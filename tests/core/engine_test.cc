#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"

namespace trex {
namespace {

std::shared_ptr<repair::RuleRepair> Alg() {
  static std::shared_ptr<repair::RuleRepair> alg = repair::MakeAlgorithm1();
  return alg;
}

/// The soccer table with one extra corruption (t3[City] misspelled), so
/// the reference repair fixes three cells: t3[City], t5[City],
/// t5[Country] — three distinct explanation targets for batch tests.
Table ThreeTargetDirtyTable() {
  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(3, "City"), Value("Madird"));
  return dirty;
}

std::vector<CellRef> ThreeTargets() {
  return {data::SoccerCell(3, "City"), data::SoccerCell(5, "City"),
          data::SoccerTargetCell()};
}

ExplainRequest ConstraintRequest(CellRef target) {
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  return request;
}

ExplainRequest CellsRequest(CellRef target, std::size_t num_samples,
                            std::uint64_t seed) {
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = num_samples;
  request.cells.seed = seed;
  return request;
}

void ExpectSameExplanation(const Explanation& a, const Explanation& b) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].label, b.ranked[i].label);
    // Bit-identical, not approximately equal: sharded sampling derives
    // every shard's RNG stream from (seed, shard index) alone.
    EXPECT_EQ(a.ranked[i].shapley, b.ranked[i].shapley) << a.ranked[i].label;
    EXPECT_EQ(a.ranked[i].std_error, b.ranked[i].std_error)
        << a.ranked[i].label;
    EXPECT_EQ(a.ranked[i].num_samples, b.ranked[i].num_samples);
  }
  EXPECT_EQ(a.method, b.method);
}

TEST(EngineTest, BatchOfThreeTargetsRunsOneReferenceRepair) {
  Engine engine(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  std::vector<ExplainRequest> requests;
  for (CellRef target : ThreeTargets()) {
    requests.push_back(ConstraintRequest(target));
  }
  auto batch = engine.ExplainBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->stats.reference_repairs, 1u);
  EXPECT_EQ(batch->stats.requests, 3u);
  EXPECT_EQ(batch->stats.failed_requests, 0u);
  for (const auto& result : batch->results) {
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->explanation.has_value());
    EXPECT_FALSE(result->explanation->ranked.empty());
  }
  // A second batch on the same engine must not repeat the reference run.
  auto again = engine.ExplainBatch(requests);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.reference_repairs, 0u);
}

TEST(EngineTest, ConstraintBatchSharesTheSubsetSweepAcrossTargets) {
  Engine engine(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  std::vector<ExplainRequest> requests;
  for (CellRef target : ThreeTargets()) {
    requests.push_back(ConstraintRequest(target));
  }
  auto batch = engine.ExplainBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();
  // 4 constraints -> 16 subset repairs + 1 reference, paid once by the
  // first request; the other two requests answer every subset from the
  // shared cache.
  EXPECT_EQ(batch->stats.algorithm_calls, 17u);
  const auto& first = batch->results[0];
  const auto& second = batch->results[1];
  const auto& third = batch->results[2];
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  // The reference run is charged to the batch, not to any one request.
  EXPECT_EQ(first->algorithm_calls, 16u);
  EXPECT_EQ(second->algorithm_calls, 0u);
  EXPECT_EQ(third->algorithm_calls, 0u);
  EXPECT_EQ(second->cross_request_hits, 16u);
  EXPECT_EQ(third->cross_request_hits, 16u);
  EXPECT_EQ(batch->stats.cross_request_hits, 32u);
  // The naive serial loop (fresh engine per target) would have paid
  // 3 * 17 calls; the batch pays 17.
}

TEST(EngineTest, BatchMatchesSerialExplainBitIdentically) {
  std::vector<ExplainRequest> requests;
  const std::vector<CellRef> targets = ThreeTargets();
  requests.push_back(CellsRequest(targets[0], 96, 11));
  requests.push_back(CellsRequest(targets[1], 96, 22));
  requests.push_back(CellsRequest(targets[2], 96, 33));

  Engine batch_engine(Alg(), data::SoccerConstraints(),
                      ThreeTargetDirtyTable());
  auto batch = batch_engine.ExplainBatch(requests);
  ASSERT_TRUE(batch.ok()) << batch.status();

  Engine serial_engine(Alg(), data::SoccerConstraints(),
                       ThreeTargetDirtyTable());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto serial = serial_engine.Explain(requests[i]);
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(batch->results[i].ok());
    ExpectSameExplanation(*batch->results[i]->explanation,
                          *serial->explanation);
  }
}

TEST(EngineTest, MemoCapChangesOnlyCostNeverResults) {
  std::vector<ExplainRequest> requests;
  const std::vector<CellRef> targets = ThreeTargets();
  requests.push_back(CellsRequest(targets[0], 96, 11));
  requests.push_back(CellsRequest(targets[1], 96, 22));

  Engine unbounded(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  auto baseline = unbounded.ExplainBatch(requests);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(baseline->stats.cache_evictions, 0u);

  EngineOptions options;
  options.max_memo_entries = 8;
  Engine capped(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable(),
                options);
  auto capped_batch = capped.ExplainBatch(requests);
  ASSERT_TRUE(capped_batch.ok()) << capped_batch.status();

  // Eviction is a cost knob, not a semantics knob: values bit-identical,
  // evictions surfaced, extra repair runs paid for the recomputes.
  EXPECT_GT(capped_batch->stats.cache_evictions, 0u);
  EXPECT_EQ(capped.num_cache_evictions(),
            capped_batch->stats.cache_evictions);
  EXPECT_GE(capped_batch->stats.algorithm_calls,
            baseline->stats.algorithm_calls);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(capped_batch->results[i].ok());
    ExpectSameExplanation(*capped_batch->results[i]->explanation,
                          *baseline->results[i]->explanation);
  }
}

TEST(EngineTest, SharedDirtyTableHasOneResidentCopy) {
  auto table = std::make_shared<const Table>(ThreeTargetDirtyTable());
  Engine engine(Alg(), data::SoccerConstraints(), table);
  // The engine aliases the caller's table rather than copying it...
  EXPECT_EQ(&engine.dirty(), table.get());
  ASSERT_TRUE(engine.EnsureRepair().ok());
  // ...and hands the same object to the black-box repair: use_count is
  // caller + engine + box, with no deep copies in between.
  EXPECT_EQ(engine.shared_dirty().get(), table.get());
  EXPECT_EQ(table.use_count(), 3);
  auto result = engine.Explain(ConstraintRequest(data::SoccerTargetCell()));
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(EngineTest, ThreadCountDoesNotChangeSampledValues) {
  const std::vector<CellRef> targets = ThreeTargets();
  std::vector<Explanation> per_thread_count;
  for (std::size_t num_threads : {std::size_t{1}, std::size_t{4}}) {
    EngineOptions options;
    options.num_threads = num_threads;
    Engine engine(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable(),
                  options);
    auto result = engine.Explain(CellsRequest(targets[2], 128, 77));
    ASSERT_TRUE(result.ok()) << result.status();
    per_thread_count.push_back(std::move(*result->explanation));
  }
  ExpectSameExplanation(per_thread_count[0], per_thread_count[1]);
}

TEST(EngineTest, ThreadedConstraintSamplingMatchesSerial) {
  ExplainRequest request = ConstraintRequest(data::SoccerTargetCell());
  request.constraints.force_sampling = true;
  request.constraints.sampling.num_samples = 256;
  request.constraints.sampling.seed = 5;
  std::vector<Explanation> runs;
  for (std::size_t num_threads : {std::size_t{1}, std::size_t{3}}) {
    EngineOptions options;
    options.num_threads = num_threads;
    Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable(),
                  options);
    auto result = engine.Explain(request);
    ASSERT_TRUE(result.ok()) << result.status();
    runs.push_back(std::move(*result->explanation));
  }
  ExpectSameExplanation(runs[0], runs[1]);
}

TEST(EngineTest, SequentialExplainCallsShareTheEngineCache) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  auto first = engine.Explain(ConstraintRequest(data::SoccerTargetCell()));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->algorithm_calls, 17u);
  auto second =
      engine.Explain(ConstraintRequest(data::SoccerCell(5, "City")));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->algorithm_calls, 0u);
  EXPECT_EQ(second->cross_request_hits, 16u);
  EXPECT_EQ(engine.num_algorithm_calls(), 17u);
}

TEST(EngineTest, PerRequestFailuresStayInTheirSlot) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  std::vector<ExplainRequest> requests;
  requests.push_back(ConstraintRequest(data::SoccerTargetCell()));
  requests.push_back(ConstraintRequest(data::SoccerCell(1, "Team")));  // unrepaired
  auto batch = engine.ExplainBatch(requests);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats.failed_requests, 1u);
  EXPECT_TRUE(batch->results[0].ok());
  EXPECT_FALSE(batch->results[1].ok());
  EXPECT_EQ(batch->results[1].status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, HeterogeneousKindsInOneBatch) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  ExplainRequest interactions = ConstraintRequest(data::SoccerTargetCell());
  interactions.kind = ExplainKind::kInteractions;
  ExplainRequest removal = ConstraintRequest(data::SoccerTargetCell());
  removal.kind = ExplainKind::kRemovalSets;
  ExplainRequest single;
  single.target = data::SoccerTargetCell();
  single.kind = ExplainKind::kSingleCell;
  single.cells.policy = AbsentCellPolicy::kNull;
  single.cells.num_samples = 50;
  single.single_cell = data::SoccerCell(5, "League");

  auto batch = engine.ExplainBatch({interactions, removal, single});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats.failed_requests, 0u);
  EXPECT_FALSE(batch->results[0]->interactions.empty());
  // Removal sets for the running example: {C1,C3} and {C2,C3}.
  ASSERT_EQ(batch->results[1]->removal_sets.size(), 2u);
  ASSERT_TRUE(batch->results[2]->single_cell.has_value());
  // The constraint-mask evaluations behind interactions and removal
  // sets overlap, so the batch must record amortized work.
  EXPECT_GT(batch->stats.cross_request_hits, 0u);
}

TEST(EngineTest, ReferenceCleanExposedAfterEnsureRepair) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  EXPECT_FALSE(engine.has_repair());
  ASSERT_TRUE(engine.EnsureRepair().ok());
  ASSERT_TRUE(engine.has_repair());
  EXPECT_EQ(engine.reference_clean(), data::SoccerCleanTable());
  EXPECT_EQ(engine.num_algorithm_calls(), 1u);
}

TEST(EngineTest, TooManyConstraintsForMaskRejected) {
  // 65 constraints exceed the uint64_t subset-mask width; the engine
  // must reject the request instead of silently truncating.
  const Schema schema = data::SoccerSchema();
  std::string text;
  for (int i = 1; i <= 65; ++i) {
    text += "X" + std::to_string(i) +
            ": !(t1.Team == t2.Team & t1.City != t2.City)\n";
  }
  auto dcs = dc::ParseDcSet(text, schema);
  ASSERT_TRUE(dcs.ok()) << dcs.status();
  ASSERT_EQ(dcs->size(), 65u);
  Engine engine(Alg(), *dcs, data::SoccerDirtyTable());
  auto result = engine.Explain(ConstraintRequest(data::SoccerTargetCell()));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  ExplainRequest removal = ConstraintRequest(data::SoccerTargetCell());
  removal.kind = ExplainKind::kRemovalSets;
  EXPECT_FALSE(engine.Explain(removal).ok());
}

TEST(EngineTest, SingleCellRequestWithoutPlayerCellRejected) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kSingleCell;  // single_cell left unset
  auto result = engine.Explain(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, ExplanationReportsPerRequestCostOnWarmEngine) {
  Engine engine(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  auto first = engine.Explain(ConstraintRequest(data::SoccerTargetCell()));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->explanation->algorithm_calls, 17u);
  auto second =
      engine.Explain(ConstraintRequest(data::SoccerCell(5, "City")));
  ASSERT_TRUE(second.ok());
  // The warm engine served everything from cache: the embedded
  // Explanation reports this request's cost, not lifetime totals.
  EXPECT_EQ(second->explanation->algorithm_calls, 0u);
  EXPECT_EQ(second->explanation->cache_hits, 16u);
}

TEST(EngineTest, StrongTableHashGivesBitIdenticalExplanations) {
  // Strong hashing changes only the memo's verification (and halves its
  // footprint) — never values or cost pattern.
  EngineOptions strong_options;
  strong_options.use_strong_table_hash = true;
  Engine verified(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable());
  Engine strong(Alg(), data::SoccerConstraints(), data::SoccerDirtyTable(),
                strong_options);
  const ExplainRequest request =
      CellsRequest(data::SoccerTargetCell(), 48, /*seed=*/11);
  auto a = verified.Explain(request);
  auto b = strong.Explain(request);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameExplanation(*a->explanation, *b->explanation);
  EXPECT_EQ(verified.num_algorithm_calls(), strong.num_algorithm_calls());
  EXPECT_EQ(verified.num_cache_hits(), strong.num_cache_hits());
}

TEST(EngineTest, SealedBatchGivesBitIdenticalExplanations) {
  // Sealing changes only the memo's representation (outcome bitsets
  // instead of repaired tables) — never values or cost pattern. The
  // compaction itself must be at least 5x on this mixed batch.
  EngineOptions sealed_options;
  sealed_options.seal_targets = true;
  Engine plain(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  Engine sealed(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable(),
                sealed_options);
  std::vector<ExplainRequest> requests;
  for (const CellRef& target : ThreeTargets()) {
    requests.push_back(ConstraintRequest(target));
  }
  requests.push_back(CellsRequest(data::SoccerTargetCell(), 32, /*seed=*/9));
  auto a = plain.ExplainBatch(requests);
  auto b = sealed.ExplainBatch(requests);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->results.size(), b->results.size());
  for (std::size_t i = 0; i < a->results.size(); ++i) {
    ASSERT_TRUE(a->results[i].ok());
    ASSERT_TRUE(b->results[i].ok());
    ExpectSameExplanation(*a->results[i]->explanation,
                          *b->results[i]->explanation);
  }
  EXPECT_EQ(a->stats.algorithm_calls, b->stats.algorithm_calls);
  EXPECT_EQ(a->stats.cache_hits, b->stats.cache_hits);
  EXPECT_GE(a->stats.approx_memo_bytes, 5 * b->stats.approx_memo_bytes)
      << "sealed batch must compact the memo at least 5x (unsealed="
      << a->stats.approx_memo_bytes
      << ", sealed=" << b->stats.approx_memo_bytes << ")";
  EXPECT_EQ(plain.approx_memo_bytes(), a->stats.approx_memo_bytes);
}

TEST(EngineTest, SealedEngineServesNewTargetsInLaterBatches) {
  // A second batch over targets unseen by the first (registered after
  // the seal) must still be bit-identical to a fresh unsealed engine —
  // the recompute-on-miss fallback, end to end.
  EngineOptions sealed_options;
  sealed_options.seal_targets = true;
  Engine sealed(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable(),
                sealed_options);
  auto first = sealed.ExplainBatch(
      {ConstraintRequest(data::SoccerTargetCell())});
  ASSERT_TRUE(first.ok()) << first.status();

  Engine plain(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  auto plain_first = plain.ExplainBatch(
      {ConstraintRequest(data::SoccerTargetCell())});
  ASSERT_TRUE(plain_first.ok());

  std::vector<ExplainRequest> second;
  second.push_back(ConstraintRequest(data::SoccerCell(3, "City")));
  second.push_back(ConstraintRequest(data::SoccerCell(5, "City")));
  auto sealed_second = sealed.ExplainBatch(second);
  auto plain_second = plain.ExplainBatch(second);
  ASSERT_TRUE(sealed_second.ok());
  ASSERT_TRUE(plain_second.ok());
  for (std::size_t i = 0; i < second.size(); ++i) {
    ASSERT_TRUE(sealed_second->results[i].ok());
    ASSERT_TRUE(plain_second->results[i].ok());
    ExpectSameExplanation(*sealed_second->results[i]->explanation,
                          *plain_second->results[i]->explanation);
  }
}

TEST(EngineTest, BatchLevelCancelShortCircuitsRemainingSlots) {
  Engine engine(Alg(), data::SoccerConstraints(), ThreeTargetDirtyTable());
  CancelSource source;
  source.Cancel();  // pre-cancelled: every slot lands Cancelled
  std::vector<ExplainRequest> requests;
  for (const CellRef& target : ThreeTargets()) {
    requests.push_back(ConstraintRequest(target));
  }
  auto batch = engine.ExplainBatch(requests, source.token());
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->stats.failed_requests, 3u);
  EXPECT_EQ(batch->stats.cancelled_requests, 3u);
  for (const auto& result : batch->results) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  // A dead batch on a cold engine pays nothing — not even the
  // reference repair.
  EXPECT_EQ(engine.num_algorithm_calls(), 0u);
  // The engine stays reusable and an uncancelled batch still works.
  auto ok_batch = engine.ExplainBatch(requests);
  ASSERT_TRUE(ok_batch.ok());
  EXPECT_EQ(ok_batch->stats.failed_requests, 0u);
  EXPECT_EQ(ok_batch->stats.cancelled_requests, 0u);
}

TEST(EngineTest, ExplainKindNames) {
  EXPECT_STREQ(ExplainKindToString(ExplainKind::kConstraints),
               "constraints");
  EXPECT_STREQ(ExplainKindToString(ExplainKind::kCells), "cells");
  EXPECT_STREQ(ExplainKindToString(ExplainKind::kInteractions),
               "interactions");
  EXPECT_STREQ(ExplainKindToString(ExplainKind::kRemovalSets),
               "removal-sets");
  EXPECT_STREQ(ExplainKindToString(ExplainKind::kSingleCell),
               "single-cell");
}

}  // namespace
}  // namespace trex
