// Memo-never-poisoned: a failed black-box evaluation must leave no
// `CacheEntry` behind (sealed or unsealed), so a fault-then-retry
// sequence converges on exactly one correct memo entry and warm-path
// results bit-identical to a never-faulted run — across all four
// bundled repair backends.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/repair_game.h"
#include "data/soccer.h"
#include "repair/faulty.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"
#include "repair/soccer_algorithm1.h"

namespace trex {
namespace {

using repair::FaultyAlgorithm;
using repair::FaultyOptions;

struct Backend {
  std::string label;
  std::shared_ptr<const repair::RepairAlgorithm> algorithm;
};

std::vector<Backend> AllBackends() {
  return {
      {"rule", repair::MakeAlgorithm1()},
      {"fd", std::make_shared<repair::FdRepair>()},
      {"holistic", std::make_shared<repair::HolisticRepair>()},
      {"holoclean", std::make_shared<repair::HoloCleanRepair>()},
  };
}

Table PerturbedSoccer() {
  Table perturbed = data::SoccerDirtyTable();
  perturbed.Set(data::SoccerCell(1, "Team"), Value::Null());
  return perturbed;
}

TEST(MemoIntegrityTest, FailedEvalWritesNoEntryAndRetryHealsAllBackends) {
  for (const Backend& backend : AllBackends()) {
    SCOPED_TRACE(backend.label);

    // Never-faulted twin: the ground truth for outcome bit-identity.
    auto clean_box = BlackBoxRepair::Make(
        backend.algorithm.get(), data::SoccerConstraints(),
        data::SoccerDirtyTable(), data::SoccerTargetCell());
    ASSERT_TRUE(clean_box.ok()) << clean_box.status();
    const Table perturbed = PerturbedSoccer();
    const bool expected = clean_box->EvalTable(perturbed);

    // Faulted twin: the reference repair (call 1) passes, the first
    // *eval* (call 2) fails transient.
    auto faulty = std::make_shared<FaultyAlgorithm>(
        "faulty-" + backend.label, backend.algorithm,
        FaultyOptions{.skip_first = 1, .fail_first = 1});
    auto box = BlackBoxRepair::Make(faulty.get(), data::SoccerConstraints(),
                                    data::SoccerDirtyTable(),
                                    data::SoccerTargetCell());
    ASSERT_TRUE(box.ok()) << box.status();
    box->BeginRequest(1);

    // The faulted eval records the error, fires the abort channel, and
    // — the invariant under test — writes NO memo entry.
    (void)box->EvalTable(perturbed);
    EXPECT_EQ(faulty->injected_failures(), 1u);
    Status eval_error = box->eval_error();
    ASSERT_FALSE(eval_error.ok());
    EXPECT_EQ(eval_error.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(box->eval_abort_token().cancelled());
    EXPECT_EQ(box->num_table_memo_entries(), 0u);

    // Retry: a fresh request resets the failure channel; the schedule
    // has recovered, so the eval succeeds and memoizes exactly one
    // entry with the never-faulted outcome.
    box->BeginRequest(2);
    EXPECT_TRUE(box->eval_error().ok());
    EXPECT_FALSE(box->eval_abort_token().cancelled());
    const bool healed = box->EvalTable(perturbed);
    EXPECT_EQ(healed, expected);
    EXPECT_EQ(box->num_table_memo_entries(), 1u);

    // Warm path: the retry's entry serves repeats without new repair
    // calls, still bit-identical.
    const std::size_t calls = faulty->calls();
    EXPECT_EQ(box->EvalTable(perturbed), expected);
    EXPECT_EQ(faulty->calls(), calls);
    EXPECT_EQ(box->num_table_memo_entries(), 1u);
  }
}

TEST(MemoIntegrityTest, SealedMemoAlsoStaysCleanOnFailure) {
  // Same invariant on the sealed (per-target bitset) memo layout.
  auto faulty = std::make_shared<FaultyAlgorithm>(
      "faulty-sealed", repair::MakeAlgorithm1(),
      FaultyOptions{.skip_first = 1, .fail_first = 1});
  auto box = BlackBoxRepair::Make(faulty.get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok()) << box.status();
  box->SealTargets();
  box->BeginRequest(1);

  const Table perturbed = PerturbedSoccer();
  (void)box->EvalTable(perturbed);
  ASSERT_FALSE(box->eval_error().ok());
  EXPECT_EQ(box->num_table_memo_entries(), 0u);

  box->BeginRequest(2);
  const bool healed = box->EvalTable(perturbed);
  EXPECT_EQ(box->num_table_memo_entries(), 1u);

  const auto clean_algorithm = repair::MakeAlgorithm1();
  auto clean_box = BlackBoxRepair::Make(
      clean_algorithm.get(), data::SoccerConstraints(),
      data::SoccerDirtyTable(), data::SoccerTargetCell());
  ASSERT_TRUE(clean_box.ok());
  EXPECT_EQ(healed, clean_box->EvalTable(perturbed));
}

}  // namespace
}  // namespace trex
