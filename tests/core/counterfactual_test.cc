// Tests for counterfactual removal sets and exact Banzhaf values.

#include "core/counterfactual.h"

#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <map>

#include "core/explainer.h"
#include "core/shapley_exact.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex::shap {
namespace {

class LambdaGame : public Game {
 public:
  LambdaGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}
  std::size_t num_players() const override { return n_; }
  double Value(const Coalition& coalition) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
};

TEST(RemovalSetsTest, SingleNecessaryPlayer) {
  // v = 1 iff player 0 present: the only minimal removal set is {0}.
  LambdaGame game(3, [](std::uint64_t mask) {
    return (mask & 1) ? 1.0 : 0.0;
  });
  auto sets = MinimalRemovalSets(game);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 1u);
  EXPECT_EQ((*sets)[0], (std::vector<std::size_t>{0}));
}

TEST(RemovalSetsTest, DisjunctionNeedsBothRemoved) {
  // v = 1 iff player 0 or player 1 present: minimal removal = {0, 1}.
  LambdaGame game(3, [](std::uint64_t mask) {
    return (mask & 0b11) ? 1.0 : 0.0;
  });
  auto sets = MinimalRemovalSets(game);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 1u);
  EXPECT_EQ((*sets)[0], (std::vector<std::size_t>{0, 1}));
}

TEST(RemovalSetsTest, MinimalityPrunesSupersets) {
  // v = 1 iff player 0 present. {0,1} also destroys v but is not
  // minimal and must not be reported.
  LambdaGame game(4, [](std::uint64_t mask) {
    return (mask & 1) ? 1.0 : 0.0;
  });
  auto sets = MinimalRemovalSets(game);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 1u);
  EXPECT_EQ((*sets)[0].size(), 1u);
}

TEST(RemovalSetsTest, SizeCapRespected) {
  // v = 1 iff any player present (n = 4): minimal removal set has size
  // 4, beyond the default cap of 3 -> empty result, no error.
  LambdaGame game(4, [](std::uint64_t mask) {
    return mask != 0 ? 1.0 : 0.0;
  });
  CounterfactualOptions options;
  options.max_set_size = 3;
  auto sets = MinimalRemovalSets(game, options);
  ASSERT_TRUE(sets.ok());
  EXPECT_TRUE(sets->empty());
  options.max_set_size = 4;
  sets = MinimalRemovalSets(game, options);
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ(sets->size(), 1u);
}

TEST(RemovalSetsTest, ZeroGrandCoalitionRejected) {
  LambdaGame game(2, [](std::uint64_t) { return 0.0; });
  EXPECT_FALSE(MinimalRemovalSets(game).ok());
}

TEST(RemovalSetsTest, PaperExampleRemovalSets) {
  // Running example: the repair of t5[Country] survives unless C3 is
  // removed together with C1 or C2.
  auto alg = trex::repair::MakeAlgorithm1();
  trex::ConstraintExplainer explainer;
  auto sets = explainer.ExplainRemovalSets(
      *alg, trex::data::SoccerConstraints(),
      trex::data::SoccerDirtyTable(), trex::data::SoccerTargetCell());
  ASSERT_TRUE(sets.ok()) << sets.status();
  ASSERT_EQ(sets->size(), 2u);
  EXPECT_EQ((*sets)[0], (std::vector<std::string>{"C1", "C3"}));
  EXPECT_EQ((*sets)[1], (std::vector<std::string>{"C2", "C3"}));
}

TEST(BanzhafTest, MatchesShapleyOnSymmetricGames) {
  // For the unanimity game on 2 of 2 players both indices give 1/2...
  // actually Banzhaf of v = 1 iff both present: each player pivotal in
  // 1 of 2 coalitions -> 1/2; Shapley also 1/2.
  LambdaGame game(2, [](std::uint64_t mask) {
    return mask == 0b11 ? 1.0 : 0.0;
  });
  auto banzhaf = ComputeExactBanzhaf(game);
  auto shapley = ComputeExactShapley(game);
  ASSERT_TRUE(banzhaf.ok());
  ASSERT_TRUE(shapley.ok());
  EXPECT_NEAR((*banzhaf)[0], 0.5, 1e-12);
  EXPECT_NEAR((*banzhaf)[0], (*shapley)[0], 1e-12);
}

TEST(BanzhafTest, DiffersFromShapleyInGeneral) {
  // Glove game: Shapley = (2/3, 1/6, 1/6); Banzhaf: player 0 pivotal in
  // {1},{2},{1,2} -> 3/4; players 1,2 pivotal only in {0} -> 1/4.
  LambdaGame game(3, [](std::uint64_t mask) {
    const bool left = mask & 0b001;
    const bool right = mask & 0b110;
    return left && right ? 1.0 : 0.0;
  });
  auto banzhaf = ComputeExactBanzhaf(game);
  ASSERT_TRUE(banzhaf.ok());
  EXPECT_NEAR((*banzhaf)[0], 0.75, 1e-12);
  EXPECT_NEAR((*banzhaf)[1], 0.25, 1e-12);
  EXPECT_NEAR((*banzhaf)[2], 0.25, 1e-12);
  // No efficiency: the values sum to 1.25, not v(N) = 1.
}

TEST(BanzhafTest, DummyPlayerGetsZero) {
  LambdaGame game(3, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask & 0b011));
  });
  auto banzhaf = ComputeExactBanzhaf(game);
  ASSERT_TRUE(banzhaf.ok());
  EXPECT_NEAR((*banzhaf)[2], 0.0, 1e-12);
}

TEST(BanzhafTest, CapAndEmptyGame) {
  LambdaGame empty(0, [](std::uint64_t) { return 0.0; });
  auto none = ComputeExactBanzhaf(empty);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  LambdaGame big(25, [](std::uint64_t) { return 0.0; });
  EXPECT_FALSE(ComputeExactBanzhaf(big).ok());
}

TEST(BanzhafTest, ConstraintExplainerBanzhafMode) {
  // Running example under Banzhaf: C3 pivotal in the 4 subsets without
  // {C1,C2} complete (of 8) -> 6/8? Count: v(S∪C3)-v(S) = 1 unless
  // {C1,C2} ⊆ S: subsets of {C1,C2,C4}: 8 total, 2 contain both C1,C2
  // -> pivotal in 6 -> 6/8 = 0.75. C1 pivotal iff C2 ∈ S, C3 ∉ S:
  // S ∈ {{C2},{C2,C4}} -> 2/8 = 0.25. C4 never pivotal -> 0.
  auto alg = trex::repair::MakeAlgorithm1();
  trex::ConstraintExplainerOptions options;
  options.use_banzhaf = true;
  trex::ConstraintExplainer explainer(options);
  auto ex = explainer.Explain(*alg, trex::data::SoccerConstraints(),
                              trex::data::SoccerDirtyTable(),
                              trex::data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_EQ(ex->method, "exact(banzhaf)");
  std::map<std::string, double> values;
  for (const auto& p : ex->ranked) values[p.label] = p.shapley;
  EXPECT_NEAR(values.at("C3"), 0.75, 1e-12);
  EXPECT_NEAR(values.at("C1"), 0.25, 1e-12);
  EXPECT_NEAR(values.at("C2"), 0.25, 1e-12);
  EXPECT_NEAR(values.at("C4"), 0.0, 1e-12);
  // Same ranking as Shapley here, different magnitudes.
  EXPECT_EQ(ex->ranked[0].label, "C3");
}

TEST(BanzhafTest, BanzhafWithSamplingRejected) {
  auto alg = trex::repair::MakeAlgorithm1();
  trex::ConstraintExplainerOptions options;
  options.use_banzhaf = true;
  options.force_sampling = true;
  trex::ConstraintExplainer explainer(options);
  auto ex = explainer.Explain(*alg, trex::data::SoccerConstraints(),
                              trex::data::SoccerDirtyTable(),
                              trex::data::SoccerTargetCell());
  EXPECT_FALSE(ex.ok());
}

}  // namespace
}  // namespace trex::shap
