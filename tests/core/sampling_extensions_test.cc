// Tests for the sampling extensions: stratified estimation and the
// adaptive top-k driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>

#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"

namespace trex::shap {
namespace {

class LambdaGame : public Game {
 public:
  LambdaGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}
  std::size_t num_players() const override { return n_; }
  double Value(const Coalition& coalition) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
};

LambdaGame GloveGame() {
  return LambdaGame(3, [](std::uint64_t mask) {
    const bool left = mask & 0b001;
    const bool right = mask & 0b110;
    return left && right ? 1.0 : 0.0;
  });
}

TEST(StratifiedTest, ConvergesToExactValue) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 6000;
  options.seed = 11;
  auto estimate = EstimateShapleyStratified(game, 0, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->value, 2.0 / 3.0, 0.03);
  EXPECT_GT(estimate->num_samples, 0u);
}

TEST(StratifiedTest, ExactForSizeDeterminedGames) {
  // v(S) = |S|: the marginal is exactly 1 in every stratum, so the
  // stratified estimate is exact with zero variance even at a tiny
  // budget — the case stratification is built for.
  LambdaGame game(6, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask));
  });
  SamplingOptions options;
  options.num_samples = 12;  // 2 per stratum
  auto estimate = EstimateShapleyStratified(game, 2, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->value, 1.0);
  EXPECT_DOUBLE_EQ(estimate->std_error, 0.0);
}

TEST(StratifiedTest, BeatsPlainSamplingOnThresholdGames) {
  // Threshold game: v = 1 iff |S| >= 4 of 8 — marginals depend on the
  // coalition size only, so stratification removes all between-stratum
  // variance. Compare stderr at equal budgets.
  LambdaGame game(8, [](std::uint64_t mask) {
    return std::popcount(mask) >= 4 ? 1.0 : 0.0;
  });
  SamplingOptions options;
  options.num_samples = 800;
  options.seed = 13;
  auto stratified = EstimateShapleyStratified(game, 0, options);
  auto plain = EstimateShapleyForPlayer(game, 0, options);
  ASSERT_TRUE(stratified.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(stratified->value, 1.0 / 8.0, 0.02);
  EXPECT_NEAR(plain->value, 1.0 / 8.0, 0.05);
  EXPECT_LT(stratified->std_error, plain->std_error);
}

TEST(StratifiedTest, Validation) {
  const LambdaGame game = GloveGame();
  EXPECT_FALSE(EstimateShapleyStratified(game, 5, {}).ok());
  SamplingOptions options;
  options.num_samples = 0;
  EXPECT_FALSE(EstimateShapleyStratified(game, 0, options).ok());
}

TEST(StratifiedTest, DeterministicForSeed) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 300;
  options.seed = 17;
  auto a = EstimateShapleyStratified(game, 1, options);
  auto b = EstimateShapleyStratified(game, 1, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->value, b->value);
}

TEST(TopKTest, FindsTheTopPlayer) {
  const LambdaGame game = GloveGame();
  TopKOptions options;
  options.k = 1;
  options.seed = 19;
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->separated);
  EXPECT_EQ(result->ranking[0], 0u);  // the left glove dominates
  EXPECT_LT(result->sweeps, options.max_samples);
}

TEST(TopKTest, SeparationStopsEarlyOnEasyGames) {
  // Additive game with well-separated weights: should separate fast.
  LambdaGame game(6, [](std::uint64_t mask) {
    double total = 0;
    const double w[] = {32, 16, 8, 4, 2, 1};
    for (int i = 0; i < 6; ++i) {
      if (mask & (1u << i)) total += w[i];
    }
    return total;
  });
  TopKOptions options;
  options.k = 2;
  options.batch = 8;
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->separated);
  EXPECT_EQ(result->ranking[0], 0u);
  EXPECT_EQ(result->ranking[1], 1u);
  EXPECT_LE(result->sweeps, 64u);
}

TEST(TopKTest, BudgetExhaustionOnTiedPlayers) {
  // Symmetric game: players are exchangeable, the k/k+1 boundary can
  // never separate; the driver must stop at the budget.
  LambdaGame game(4, [](std::uint64_t mask) {
    return std::popcount(mask) >= 2 ? 1.0 : 0.0;
  });
  TopKOptions options;
  options.k = 2;
  options.max_samples = 128;
  options.batch = 16;
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->separated);
  EXPECT_EQ(result->sweeps, 128u);
}

TEST(TopKTest, KCoveringAllPlayersIsTriviallySeparated) {
  const LambdaGame game = GloveGame();
  TopKOptions options;
  options.k = 3;
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->separated);
}

TEST(TopKTest, EstimatesAgreeWithExact) {
  const LambdaGame game = GloveGame();
  TopKOptions options;
  options.k = 1;
  options.max_samples = 4096;
  options.seed = 23;
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  auto exact = ComputeExactShapley(game);
  ASSERT_TRUE(exact.ok());
  // The top player's estimate must be near its exact value even when
  // stopping early (unbiasedness doesn't depend on the stop rule's
  // ordering statistics much at these counts).
  EXPECT_NEAR(result->estimates[result->ranking[0]].value,
              (*exact)[result->ranking[0]], 0.1);
}

TEST(TopKTest, Validation) {
  const LambdaGame game = GloveGame();
  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(EstimateTopKPlayers(game, options).ok());
  options.k = 1;
  options.batch = 0;
  EXPECT_FALSE(EstimateTopKPlayers(game, options).ok());
  LambdaGame empty(0, [](std::uint64_t) { return 0.0; });
  auto result = EstimateTopKPlayers(empty, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->estimates.empty());
}

}  // namespace
}  // namespace trex::shap
