#include "core/shapley_sampling.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <functional>

#include "common/random.h"
#include "core/shapley_exact.h"

namespace trex::shap {
namespace {

class LambdaGame : public Game {
 public:
  LambdaGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}
  std::size_t num_players() const override { return n_; }
  double Value(const Coalition& coalition) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
};

LambdaGame GloveGame() {
  return LambdaGame(3, [](std::uint64_t mask) {
    const bool left = mask & 0b001;
    const bool right = mask & 0b110;
    return left && right ? 1.0 : 0.0;
  });
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stat.std_error(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

TEST(RunningStatTest, ZeroAndOneSamples) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stat.std_error(), 0.0);
}

TEST(RunningStatTest, ToEstimateCopiesMoments) {
  RunningStat stat;
  stat.Add(1.0);
  stat.Add(3.0);
  const Estimate e = stat.ToEstimate();
  EXPECT_DOUBLE_EQ(e.value, 2.0);
  EXPECT_EQ(e.num_samples, 2u);
  EXPECT_GT(e.std_error, 0.0);
}

TEST(EstimateTest, ConfidenceInterval) {
  Estimate e;
  e.value = 1.0;
  e.std_error = 0.1;
  EXPECT_NEAR(e.ci_low(), 1.0 - 0.196, 1e-9);
  EXPECT_NEAR(e.ci_high(), 1.0 + 0.196, 1e-9);
  EXPECT_NEAR(e.ci_low(1.0), 0.9, 1e-12);
}

TEST(SamplingTest, SinglePlayerConvergesToExact) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 4000;
  options.seed = 17;
  auto estimate = EstimateShapleyForPlayer(game, 0, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->value, 2.0 / 3.0, 0.03);
  EXPECT_GT(estimate->std_error, 0.0);
  EXPECT_EQ(estimate->num_samples, 4000u);
}

TEST(SamplingTest, AllPlayersConvergeToExact) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 4000;
  options.seed = 19;
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(estimates.ok());
  ASSERT_EQ(estimates->size(), 3u);
  EXPECT_NEAR((*estimates)[0].value, 2.0 / 3.0, 0.03);
  EXPECT_NEAR((*estimates)[1].value, 1.0 / 6.0, 0.03);
  EXPECT_NEAR((*estimates)[2].value, 1.0 / 6.0, 0.03);
}

TEST(SamplingTest, DeterministicForSeed) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 100;
  options.seed = 23;
  auto a = EstimateShapleyAllPlayers(game, options);
  auto b = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].value, (*b)[i].value);
  }
}

TEST(SamplingTest, DifferentSeedsDiffer) {
  const LambdaGame game = GloveGame();
  SamplingOptions a_options;
  a_options.num_samples = 50;
  a_options.seed = 1;
  SamplingOptions b_options = a_options;
  b_options.seed = 2;
  auto a = EstimateShapleyForPlayer(game, 0, a_options);
  auto b = EstimateShapleyForPlayer(game, 0, b_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->value, b->value);
}

TEST(SamplingTest, PlayerOutOfRangeRejected) {
  const LambdaGame game = GloveGame();
  EXPECT_FALSE(EstimateShapleyForPlayer(game, 3, {}).ok());
}

TEST(SamplingTest, ZeroSamplesRejected) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 0;
  EXPECT_FALSE(EstimateShapleyForPlayer(game, 0, options).ok());
  EXPECT_FALSE(EstimateShapleyAllPlayers(game, options).ok());
}

TEST(SamplingTest, EmptyGameAllPlayers) {
  LambdaGame game(0, [](std::uint64_t) { return 0.0; });
  auto estimates = EstimateShapleyAllPlayers(game, {});
  ASSERT_TRUE(estimates.ok());
  EXPECT_TRUE(estimates->empty());
}

TEST(SamplingTest, EarlyStoppingOnTargetStdError) {
  // A constant-marginal game: every sample is identical, so variance is
  // 0 and the early stop should trigger at the first check.
  LambdaGame game(4, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask));
  });
  SamplingOptions options;
  options.num_samples = 100000;
  options.target_std_error = 0.01;
  options.check_interval = 32;
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(estimates.ok());
  EXPECT_LT((*estimates)[0].num_samples, 100u);
  EXPECT_NEAR((*estimates)[0].value, 1.0, 1e-12);
}

TEST(SamplingTest, AntitheticDoublesSampleCount) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 100;
  options.antithetic = true;
  auto estimate = EstimateShapleyForPlayer(game, 0, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->num_samples, 200u);
}

TEST(SamplingTest, AntitheticStillUnbiased) {
  const LambdaGame game = GloveGame();
  SamplingOptions options;
  options.num_samples = 2000;
  options.antithetic = true;
  options.seed = 29;
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(estimates.ok());
  EXPECT_NEAR((*estimates)[0].value, 2.0 / 3.0, 0.03);
}

TEST(SamplingTest, SumOfEstimatesNearEfficiency) {
  // For a sweep estimator each permutation's marginals telescope to
  // v(N) - v(∅) exactly, so the estimate sum is exact.
  LambdaGame game(5, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask) * std::popcount(mask));
  });
  SamplingOptions options;
  options.num_samples = 50;
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(estimates.ok());
  double total = 0;
  for (const Estimate& e : *estimates) total += e.value;
  EXPECT_NEAR(total, 25.0, 1e-9);
}

// Property sweep: on random games, sampled estimates must fall within a
// few standard errors of the exact values.
class SamplingConvergenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplingConvergenceTest, EstimatesWithinConfidenceBands) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.Index(3);
  std::vector<double> v(std::size_t{1} << n);
  v[0] = 0.0;
  for (std::size_t mask = 1; mask < v.size(); ++mask) {
    v[mask] = rng.Bernoulli(0.5) ? 1.0 : 0.0;  // binary game like T-REx
  }
  LambdaGame game(n, [&v](std::uint64_t mask) { return v[mask]; });

  auto exact = ComputeExactShapley(game);
  ASSERT_TRUE(exact.ok());

  SamplingOptions options;
  options.num_samples = 3000;
  options.seed = GetParam() * 7919 + 1;
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_TRUE(estimates.ok());

  for (std::size_t i = 0; i < n; ++i) {
    const double err = std::fabs((*estimates)[i].value - (*exact)[i]);
    const double band =
        std::max(5.0 * (*estimates)[i].std_error, 0.02);
    EXPECT_LE(err, band) << "player " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingConvergenceTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace trex::shap
