#include "core/shapley_exact.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/random.h"

namespace trex::shap {
namespace {

/// A game defined by an arbitrary function over coalition bitmasks.
class LambdaGame : public Game {
 public:
  LambdaGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}

  std::size_t num_players() const override { return n_; }

  double Value(const Coalition& coalition) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
};

TEST(ExactShapleyTest, EmptyGame) {
  LambdaGame game(0, [](std::uint64_t) { return 0.0; });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_TRUE(values->empty());
}

TEST(ExactShapleyTest, SinglePlayerGetsFullValue) {
  LambdaGame game(1, [](std::uint64_t mask) {
    return mask == 1 ? 7.0 : 0.0;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 1u);
  EXPECT_DOUBLE_EQ((*values)[0], 7.0);
}

TEST(ExactShapleyTest, SymmetricPlayersShareEqually) {
  // v(S) = |S|^2: all players symmetric, Shapley = v(N)/n = n.
  const std::size_t n = 5;
  LambdaGame game(n, [](std::uint64_t mask) {
    const double s = static_cast<double>(std::popcount(mask));
    return s * s;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  for (double phi : *values) {
    EXPECT_NEAR(phi, static_cast<double>(n), 1e-9);
  }
}

TEST(ExactShapleyTest, DummyPlayerGetsZero) {
  // Player 2 never changes the value.
  LambdaGame game(3, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask & 0b011));
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[2], 0.0, 1e-12);
  EXPECT_NEAR((*values)[0], 1.0, 1e-12);
  EXPECT_NEAR((*values)[1], 1.0, 1e-12);
}

TEST(ExactShapleyTest, GloveGame) {
  // Classic: player 0 owns a left glove, players 1 and 2 own right
  // gloves; a pair is worth 1. Shapley: (2/3, 1/6, 1/6).
  LambdaGame game(3, [](std::uint64_t mask) {
    const bool left = mask & 0b001;
    const bool right = mask & 0b110;
    return left && right ? 1.0 : 0.0;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((*values)[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR((*values)[2], 1.0 / 6.0, 1e-12);
}

TEST(ExactShapleyTest, WeightedMajorityGame) {
  // Weights (3, 2, 2), quota 4: any two players win, one cannot.
  // All three players are pivotal equally often: Shapley = 1/3 each.
  LambdaGame game(3, [](std::uint64_t mask) {
    const int w = 3 * ((mask >> 0) & 1) + 2 * ((mask >> 1) & 1) +
                  2 * ((mask >> 2) & 1);
    return w >= 4 ? 1.0 : 0.0;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*values)[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*values)[2], 1.0 / 3.0, 1e-12);
}

TEST(ExactShapleyTest, AirportGame) {
  // Airport game with costs (1, 2, 3): v(S) = max cost in S.
  // Shapley: phi_1 = 1/3, phi_2 = 1/3 + 1/2 = 5/6, phi_3 = 1/3 + 1/2 + 1
  // = 11/6.
  const double costs[] = {1.0, 2.0, 3.0};
  LambdaGame game(3, [&costs](std::uint64_t mask) {
    double best = 0;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) best = std::max(best, costs[i]);
    }
    return best;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*values)[1], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR((*values)[2], 11.0 / 6.0, 1e-12);
}

TEST(ExactShapleyTest, RefusesOversizedGames) {
  LambdaGame game(30, [](std::uint64_t) { return 0.0; });
  auto values = ComputeExactShapley(game);
  EXPECT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactShapleyTest, CapIsConfigurable) {
  LambdaGame game(5, [](std::uint64_t m) {
    return static_cast<double>(std::popcount(m));
  });
  ExactShapleyOptions options;
  options.max_players = 4;
  EXPECT_FALSE(ComputeExactShapley(game, options).ok());
  options.max_players = 5;
  EXPECT_TRUE(ComputeExactShapley(game, options).ok());
}

TEST(PermutationOracleTest, RefusesLargeGames) {
  LambdaGame game(11, [](std::uint64_t) { return 0.0; });
  EXPECT_FALSE(ComputeExactShapleyByPermutations(game).ok());
}

// Property: the subset formula and the permutation enumeration agree on
// random games, and both satisfy the Shapley axioms.
class ShapleyAxiomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapleyAxiomTest, SubsetFormulaMatchesPermutationOracle) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.Index(5);  // 2..6 players
  // Random characteristic function with v(∅) = 0.
  std::vector<double> v(std::size_t{1} << n);
  v[0] = 0.0;
  for (std::size_t mask = 1; mask < v.size(); ++mask) {
    v[mask] = rng.UniformDouble() * 10.0 - 5.0;
  }
  LambdaGame game(n, [&v](std::uint64_t mask) { return v[mask]; });

  auto subset = ComputeExactShapley(game);
  auto perms = ComputeExactShapleyByPermutations(game);
  ASSERT_TRUE(subset.ok());
  ASSERT_TRUE(perms.ok());
  ASSERT_EQ(subset->size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*subset)[i], (*perms)[i], 1e-9) << "player " << i;
  }
}

TEST_P(ShapleyAxiomTest, EfficiencyAxiom) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = 2 + rng.Index(5);
  std::vector<double> v(std::size_t{1} << n);
  v[0] = 0.0;
  for (std::size_t mask = 1; mask < v.size(); ++mask) {
    v[mask] = rng.UniformDouble() * 4.0;
  }
  LambdaGame game(n, [&v](std::uint64_t mask) { return v[mask]; });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  const double total =
      std::accumulate(values->begin(), values->end(), 0.0);
  EXPECT_NEAR(total, v.back(), 1e-9);  // sum = v(N) - v(∅)
}

TEST_P(ShapleyAxiomTest, LinearityAxiom) {
  Rng rng(GetParam() + 2000);
  const std::size_t n = 2 + rng.Index(4);
  const std::size_t size = std::size_t{1} << n;
  std::vector<double> v1(size), v2(size);
  v1[0] = v2[0] = 0.0;
  for (std::size_t mask = 1; mask < size; ++mask) {
    v1[mask] = rng.UniformDouble();
    v2[mask] = rng.UniformDouble();
  }
  LambdaGame g1(n, [&v1](std::uint64_t m) { return v1[m]; });
  LambdaGame g2(n, [&v2](std::uint64_t m) { return v2[m]; });
  LambdaGame sum(n, [&v1, &v2](std::uint64_t m) { return v1[m] + v2[m]; });

  auto s1 = ComputeExactShapley(g1);
  auto s2 = ComputeExactShapley(g2);
  auto ssum = ComputeExactShapley(sum);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(ssum.ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*ssum)[i], (*s1)[i] + (*s2)[i], 1e-9);
  }
}

TEST_P(ShapleyAxiomTest, SymmetryAxiom) {
  // Build a game symmetric in players 0 and 1: v depends only on
  // |S ∩ {0,1}| and S \ {0,1}.
  Rng rng(GetParam() + 3000);
  const std::size_t n = 3 + rng.Index(3);
  const std::size_t rest_size = std::size_t{1} << (n - 2);
  std::vector<std::vector<double>> v(3,
                                     std::vector<double>(rest_size, 0.0));
  for (int k = 0; k < 3; ++k) {
    for (std::size_t rest = 0; rest < rest_size; ++rest) {
      if (k == 0 && rest == 0) continue;  // v(∅) = 0
      v[k][rest] = rng.UniformDouble() * 3.0;
    }
  }
  LambdaGame game(n, [&v](std::uint64_t mask) {
    const int k = static_cast<int>((mask & 1) + ((mask >> 1) & 1));
    return v[k][mask >> 2];
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], (*values)[1], 1e-9);
}

TEST_P(ShapleyAxiomTest, MonotoneGameHasNonNegativeValues) {
  // v(S) = 1 if S contains a random winning subset, else 0 — monotone.
  Rng rng(GetParam() + 4000);
  const std::size_t n = 3 + rng.Index(4);
  const std::uint64_t winning =
      rng.UniformUint64((std::uint64_t{1} << n) - 1) + 1;
  LambdaGame game(n, [winning](std::uint64_t mask) {
    return (mask & winning) == winning ? 1.0 : 0.0;
  });
  auto values = ComputeExactShapley(game);
  ASSERT_TRUE(values.ok());
  for (double phi : *values) EXPECT_GE(phi, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyAxiomTest,
                         ::testing::Range<std::uint64_t>(0, 10));

// --- Sharded 2^n subset walk (core/subset_walk.h) ---

TEST(ShardedExactTest, ShapleyBitIdenticalForEveryThreadCount) {
  // A deterministic, thread-safe game whose values exercise non-trivial
  // floating-point accumulation. 10 players = 1024 masks, several
  // shards' worth of work.
  const std::size_t n = 10;
  LambdaGame game(n, [](std::uint64_t mask) {
    const double s = static_cast<double>(std::popcount(mask));
    return s * s + 0.125 * static_cast<double>(mask % 7);
  });
  auto serial = ComputeExactShapley(game);
  ASSERT_TRUE(serial.ok());
  for (std::size_t threads : {2u, 4u, 7u}) {
    ExactShapleyOptions options;
    options.num_threads = threads;
    auto sharded = ComputeExactShapley(game, options);
    ASSERT_TRUE(sharded.ok());
    ASSERT_EQ(sharded->size(), serial->size());
    for (std::size_t i = 0; i < n; ++i) {
      // Bit-identical, not approximately equal: shards evaluate
      // disjoint mask ranges and each player accumulates serially in
      // mask order.
      EXPECT_EQ((*sharded)[i], (*serial)[i])
          << "player " << i << ", " << threads << " threads";
    }
  }
}

TEST(ShardedExactTest, BanzhafBitIdenticalForEveryThreadCount) {
  LambdaGame game(9, [](std::uint64_t mask) {
    return static_cast<double>((mask * 2654435761u) % 97) / 97.0;
  });
  auto serial = ComputeExactBanzhaf(game);
  ASSERT_TRUE(serial.ok());
  ExactShapleyOptions options;
  options.num_threads = 4;
  auto sharded = ComputeExactBanzhaf(game, options);
  ASSERT_TRUE(sharded.ok());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*sharded)[i], (*serial)[i]) << "player " << i;
  }
}

TEST(ShardedExactTest, ReusesACallerPool) {
  LambdaGame game(8, [](std::uint64_t mask) {
    return static_cast<double>(std::popcount(mask));
  });
  ThreadPool pool(4);
  ExactShapleyOptions options;
  options.num_threads = 4;
  options.pool = &pool;
  auto values = ComputeExactShapley(game, options);
  ASSERT_TRUE(values.ok());
  auto serial = ComputeExactShapley(game);
  ASSERT_TRUE(serial.ok());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*values)[i], (*serial)[i]);
  }
}

TEST(ShardedExactTest, CancelPollSurvivesSharding) {
  CancelSource source;
  source.Cancel();
  LambdaGame game(10, [](std::uint64_t) { return 1.0; });
  ExactShapleyOptions options;
  options.num_threads = 4;
  options.cancel = source.token();
  auto values = ComputeExactShapley(game, options);
  ASSERT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ComputeExactBanzhaf(game, options).status().code(),
            StatusCode::kCancelled);
}

}  // namespace
}  // namespace trex::shap
