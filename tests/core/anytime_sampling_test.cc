// Anytime estimation: confidence-bounded early stopping on the
// wave-synchronous sweep driver. The load-bearing guarantee under test
// is *bit-identity across thread counts with early stopping on* — the
// stopping wave, the freeze set, and every merged estimate must depend
// only on the configuration, never on scheduling.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/shapley_sampling.h"
#include "serving/cancel.h"

namespace trex::shap {
namespace {

/// Mask-valued game with an evaluation counter, so tests can assert on
/// the black-box cost of a run (the freeze set's whole point).
class CountingGame : public Game {
 public:
  CountingGame(std::size_t n, std::function<double(std::uint64_t)> v)
      : n_(n), v_(std::move(v)) {}
  std::size_t num_players() const override { return n_; }
  double Value(const Coalition& coalition) const override {
    evals_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) mask |= std::uint64_t{1} << i;
    }
    return v_(mask);
  }
  std::size_t evals() const { return evals_.load(std::memory_order_relaxed); }

 private:
  std::size_t n_;
  std::function<double(std::uint64_t)> v_;
  mutable std::atomic<std::size_t> evals_{0};
};

/// Four players: three noisy contributors (distinct weights plus a pair
/// interaction, so marginals have real variance) and one null player
/// whose marginal is always exactly 0 — the null player converges at
/// `min_samples` under the normal bound and exercises freezing.
CountingGame NoisyWithNullPlayer() {
  return CountingGame(4, [](std::uint64_t mask) {
    double v = 0.0;
    if (mask & 0b0001) v += 0.3;
    if (mask & 0b0010) v += 0.5;
    if (mask & 0b0100) v += 0.7;
    if ((mask & 0b0011) == 0b0011) v += 0.4;  // pair interaction
    return v;  // player 3 never contributes
  });
}

struct RunResult {
  std::vector<Estimate> estimates;
  SweepOutcome outcome;
};

RunResult RunAllPlayers(const Game& game, const SamplingOptions& options) {
  SweepOutcome outcome;
  auto estimates = EstimateShapleyAllPlayers(game, options, &outcome);
  EXPECT_TRUE(estimates.ok()) << estimates.status().ToString();
  return {std::move(estimates).value(), std::move(outcome)};
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t p = 0; p < a.estimates.size(); ++p) {
    EXPECT_EQ(a.estimates[p].value, b.estimates[p].value) << "player " << p;
    EXPECT_EQ(a.estimates[p].std_error, b.estimates[p].std_error)
        << "player " << p;
    EXPECT_EQ(a.estimates[p].num_samples, b.estimates[p].num_samples)
        << "player " << p;
  }
  EXPECT_EQ(a.outcome.sweeps, b.outcome.sweeps);
  EXPECT_EQ(a.outcome.waves, b.outcome.waves);
  EXPECT_EQ(a.outcome.stopped_early, b.outcome.stopped_early);
  EXPECT_EQ(a.outcome.frozen_players, b.outcome.frozen_players);
  EXPECT_EQ(a.outcome.achieved_half_width, b.outcome.achieved_half_width);
}

TEST(CiHalfWidthTest, InfiniteBelowTwoSamples) {
  RunningStat stat;
  StopRule rule;
  EXPECT_TRUE(std::isinf(CiHalfWidth(stat, rule)));
  stat.Add(1.0);
  EXPECT_TRUE(std::isinf(CiHalfWidth(stat, rule)));
  rule.bound = BoundKind::kBernstein;
  EXPECT_TRUE(std::isinf(CiHalfWidth(stat, rule)));
}

TEST(CiHalfWidthTest, NormalMatchesZTimesStdError) {
  RunningStat stat;
  for (double x : {0.0, 1.0, 0.0, 1.0}) stat.Add(x);
  StopRule rule;
  rule.z = 2.0;
  EXPECT_DOUBLE_EQ(CiHalfWidth(stat, rule), 2.0 * stat.std_error());
}

TEST(CiHalfWidthTest, BernsteinStaysPositiveOnZeroVariance) {
  // The O(1/n) range term keeps a zero-variance player's width positive
  // — where the normal bound collapses to 0 after two samples — and the
  // width shrinks as samples accumulate.
  RunningStat stat;
  stat.Add(0.5);
  stat.Add(0.5);
  StopRule rule;
  rule.bound = BoundKind::kBernstein;
  const double w2 = CiHalfWidth(stat, rule);
  EXPECT_GT(w2, 0.0);
  for (int i = 0; i < 100; ++i) stat.Add(0.5);
  const double w102 = CiHalfWidth(stat, rule);
  EXPECT_GT(w102, 0.0);
  EXPECT_LT(w102, w2);

  StopRule normal;
  EXPECT_EQ(CiHalfWidth(stat, normal), 0.0);
}

// The acceptance matrix: threads {1, 2, 8} x bounds {normal, Bernstein}
// with early stopping active must agree bit-for-bit — same estimates,
// same stopping sweep, same wave count, same freeze set size.
TEST(AnytimeSweepTest, EarlyStopReproducibilityMatrix) {
  const CountingGame game = NoisyWithNullPlayer();
  for (const BoundKind bound : {BoundKind::kNormal, BoundKind::kBernstein}) {
    SamplingOptions options;
    options.num_samples = 4096;
    options.seed = 41;
    options.shard_size = 16;
    options.check_interval = 64;  // 4 shards per wave
    options.stop.target_half_width = bound == BoundKind::kNormal ? 0.02 : 0.45;
    options.stop.bound = bound;

    options.num_threads = 1;
    const RunResult serial = RunAllPlayers(game, options);
    // The rule must actually fire mid-budget, or the matrix proves
    // nothing about early stopping.
    EXPECT_TRUE(serial.outcome.stopped_early);
    EXPECT_LT(serial.outcome.sweeps, options.num_samples);
    EXPECT_GT(serial.outcome.sweeps, 0u);

    for (const std::size_t threads : {2u, 8u}) {
      options.num_threads = threads;
      const RunResult parallel = RunAllPlayers(game, options);
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " bound="
                   << (bound == BoundKind::kNormal ? "normal" : "bernstein"));
      ExpectBitIdentical(serial, parallel);
    }
  }
}

TEST(AnytimeSweepTest, StopsAtTargetAndReportsAchievedWidth) {
  const CountingGame game = NoisyWithNullPlayer();
  SamplingOptions options;
  options.num_samples = 8192;
  options.seed = 7;
  options.shard_size = 16;
  options.check_interval = 64;
  options.stop.target_half_width = 0.08;

  const RunResult run = RunAllPlayers(game, options);
  EXPECT_TRUE(run.outcome.stopped_early);
  EXPECT_LT(run.outcome.sweeps, options.num_samples);
  EXPECT_LE(run.outcome.achieved_half_width, 0.08);
  EXPECT_GT(run.outcome.achieved_half_width, 0.0);
  // Sweeps land on a wave boundary: waves of 4 shards x 16 sweeps.
  EXPECT_EQ(run.outcome.sweeps % 64, 0u);
  EXPECT_EQ(run.outcome.waves, run.outcome.sweeps / 64);
}

// Freezing a converged player must (a) leave every unfrozen player's
// estimate bit-identical to the no-freeze run, (b) stop at the same
// wave, and (c) spend strictly fewer black-box evaluations.
TEST(AnytimeSweepTest, FreezeSkipsConvergedPlayersWithoutPerturbingOthers) {
  SamplingOptions options;
  options.num_samples = 4096;
  options.seed = 23;
  options.shard_size = 16;
  options.check_interval = 64;
  // Tight enough that the noisy players need several waves after the
  // null player converges — that gap is where freezing saves work.
  options.stop.target_half_width = 0.02;
  options.stop.min_samples = 16;

  const CountingGame frozen_game = NoisyWithNullPlayer();
  options.stop.freeze_converged = true;
  const RunResult with_freeze = RunAllPlayers(frozen_game, options);

  const CountingGame free_game = NoisyWithNullPlayer();
  options.stop.freeze_converged = false;
  const RunResult no_freeze = RunAllPlayers(free_game, options);

  // The two zero-variance players — the null player 3 and player 2,
  // whose marginal is the constant 0.7 — converge at the first wave and
  // freeze; the noisy players 0 and 1 keep sampling.
  EXPECT_GE(with_freeze.outcome.frozen_players, 2u);
  EXPECT_EQ(no_freeze.outcome.frozen_players, 0u);

  // Same stopping decision: freezing skips evaluations, never samples
  // that the stopping rule would have seen.
  EXPECT_EQ(with_freeze.outcome.sweeps, no_freeze.outcome.sweeps);
  EXPECT_EQ(with_freeze.outcome.waves, no_freeze.outcome.waves);

  // Unfrozen players: bit-identical estimates (the lazy prefix
  // re-evaluation reproduces the exact same marginals).
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_EQ(with_freeze.estimates[p].value, no_freeze.estimates[p].value)
        << "player " << p;
    EXPECT_EQ(with_freeze.estimates[p].num_samples,
              no_freeze.estimates[p].num_samples)
        << "player " << p;
  }
  // Frozen players keep their converged values — exactly 0.7 and 0,
  // since both are deterministic — with fewer samples than the run's
  // sweep count.
  EXPECT_NEAR(with_freeze.estimates[2].value, 0.7, 1e-12);
  EXPECT_EQ(with_freeze.estimates[3].value, 0.0);
  for (std::size_t p : {2u, 3u}) {
    EXPECT_LT(with_freeze.estimates[p].num_samples,
              no_freeze.estimates[p].num_samples)
        << "player " << p;
  }

  // And the savings are real black-box calls.
  EXPECT_LT(frozen_game.evals(), free_game.evals());
}

TEST(AnytimeSweepTest, SoftenKeepsPartialEstimates) {
  const CountingGame game = NoisyWithNullPlayer();
  CancelSource soften;
  soften.Cancel();  // already fired: the driver should do exactly one wave

  SamplingOptions options;
  options.num_samples = 4096;
  options.seed = 11;
  options.shard_size = 16;
  options.check_interval = 64;
  // Unreachable target: only the soften token can end this run early.
  options.stop.target_half_width = 1e-12;
  options.stop.soften = soften.token();

  const RunResult run = RunAllPlayers(game, options);
  EXPECT_TRUE(run.outcome.softened);
  EXPECT_TRUE(run.outcome.stopped_early);
  EXPECT_EQ(run.outcome.sweeps, 64u);  // exactly one wave
  EXPECT_EQ(run.outcome.waves, 1u);
  for (const Estimate& e : run.estimates) {
    EXPECT_EQ(e.num_samples, 64u);  // partial but valid
  }
  EXPECT_GT(run.outcome.achieved_half_width, 0.0);
  EXPECT_FALSE(std::isinf(run.outcome.achieved_half_width));
}

TEST(AnytimeSweepTest, HardCancelDiscardsInsteadOfSoftening) {
  const CountingGame game = NoisyWithNullPlayer();
  CancelSource cancel;
  cancel.Cancel();
  SamplingOptions options;
  options.num_samples = 256;
  options.cancel = cancel.token();
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_FALSE(estimates.ok());
  EXPECT_TRUE(estimates.status().IsCancelled());
}

TEST(AnytimeSweepTest, CancelMidRunBoundsEvaluationCount) {
  // The cancel poll in the sweep driver is load-bearing: when the token
  // trips mid-run, at most the in-flight sweep may finish. A game that
  // cancels its own source on the 16th evaluation must see the total
  // evaluation count stay within a few sweeps of the trigger — not the
  // ~2500 evaluations of the full budget. (The per-sweep poll is the
  // granularity contract documented at the trex-check-ok(cancel-poll)
  // suppressions in core/.)
  CancelSource cancel;
  std::atomic<std::size_t> seen{0};
  const CountingGame game(4, [&](std::uint64_t mask) {
    if (seen.fetch_add(1, std::memory_order_relaxed) + 1 == 16) {
      cancel.Cancel();
    }
    double v = 0.0;
    if (mask & 0b0001) v += 0.3;
    if (mask & 0b0010) v += 0.5;
    if (mask & 0b0100) v += 0.7;
    return v;
  });
  SamplingOptions options;
  options.num_samples = 512;
  options.seed = 7;
  options.cancel = cancel.token();
  auto estimates = EstimateShapleyAllPlayers(game, options);
  ASSERT_FALSE(estimates.ok());
  EXPECT_TRUE(estimates.status().IsCancelled());
  // Trigger + at most a couple of (possibly antithetic) sweeps of
  // overshoot; a missing poll would run the full budget instead.
  EXPECT_LT(game.evals(), std::size_t{16 + 64});
  EXPECT_GE(game.evals(), std::size_t{16});
}

TEST(AnytimeSweepTest, SoftenWorksWithoutAnActiveStoppingRule) {
  // A fixed-budget run (no target, no top-k) still honours the soften
  // token at wave boundaries — the serving degrade path relies on this
  // for plain sampled requests.
  const CountingGame game = NoisyWithNullPlayer();
  CancelSource soften;
  soften.Cancel();
  SamplingOptions options;
  options.num_samples = 4096;
  options.seed = 3;
  options.shard_size = 16;
  options.stop.soften = soften.token();
  const RunResult run = RunAllPlayers(game, options);
  EXPECT_TRUE(run.outcome.softened);
  EXPECT_LT(run.outcome.sweeps, options.num_samples);
  EXPECT_GT(run.outcome.sweeps, 0u);
}

TEST(AnytimeSweepTest, LegacyTargetStdErrorMapsToNormalRule) {
  // The back-compat shorthand must reproduce the explicit rule exactly:
  // std_error <= t  <=>  z * std_error <= z * t.
  const CountingGame game = NoisyWithNullPlayer();
  SamplingOptions legacy;
  legacy.num_samples = 4096;
  legacy.seed = 29;
  legacy.shard_size = 16;
  legacy.check_interval = 64;
  legacy.target_std_error = 0.03;

  SamplingOptions explicit_rule = legacy;
  explicit_rule.target_std_error.reset();
  explicit_rule.stop.target_half_width = 1.96 * 0.03;

  const RunResult a = RunAllPlayers(game, legacy);
  const RunResult b = RunAllPlayers(game, explicit_rule);
  ExpectBitIdentical(a, b);
  EXPECT_TRUE(a.outcome.stopped_early);
}

TEST(AnytimeSweepTest, SinglePlayerEstimatorHonoursSoften) {
  const CountingGame game = NoisyWithNullPlayer();
  CancelSource soften;
  soften.Cancel();
  SamplingOptions options;
  options.num_samples = 4096;
  options.check_interval = 32;
  options.stop.soften = soften.token();
  auto estimate = EstimateShapleyForPlayer(game, 0, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->num_samples, 32u);  // one check interval
}

TEST(TopKAnytimeTest, BitIdenticalAcrossThreadCounts) {
  const CountingGame game = NoisyWithNullPlayer();
  TopKOptions options;
  // Players 1 and 2 tie at Shapley value 0.7 (0.5 + half the 0.4
  // interaction vs the plain 0.7 weight), so top-1 never separates;
  // top-2 = {1, 2} separates cleanly from player 0 at 0.5.
  options.k = 2;
  options.batch = 16;
  options.max_samples = 2048;
  options.seed = 59;

  options.num_threads = 1;
  auto serial = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(serial->separated);
  EXPECT_LT(serial->sweeps, options.max_samples);
  EXPECT_TRUE((serial->ranking[0] == 1u && serial->ranking[1] == 2u) ||
              (serial->ranking[0] == 2u && serial->ranking[1] == 1u));

  for (const std::size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    auto parallel = EstimateTopKPlayers(game, options);
    ASSERT_TRUE(parallel.ok());
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    EXPECT_EQ(serial->ranking, parallel->ranking);
    EXPECT_EQ(serial->sweeps, parallel->sweeps);
    EXPECT_EQ(serial->separated, parallel->separated);
    ASSERT_EQ(serial->estimates.size(), parallel->estimates.size());
    for (std::size_t p = 0; p < serial->estimates.size(); ++p) {
      EXPECT_EQ(serial->estimates[p].value, parallel->estimates[p].value);
      EXPECT_EQ(serial->estimates[p].num_samples,
                parallel->estimates[p].num_samples);
    }
  }
}

TEST(TopKAnytimeTest, SoftenReturnsPartialRanking) {
  const CountingGame game = NoisyWithNullPlayer();
  CancelSource soften;
  soften.Cancel();
  TopKOptions options;
  options.k = 1;
  options.batch = 16;
  options.max_samples = 2048;
  options.seed = 59;
  // Keep separation from firing on the very first round so the soften
  // path is what ends the run.
  options.z = 1000.0;
  options.soften = soften.token();
  auto result = EstimateTopKPlayers(game, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->softened);
  EXPECT_FALSE(result->separated);
  EXPECT_EQ(result->sweeps, options.batch);  // one round
  EXPECT_EQ(result->ranking.size(), 4u);
}

TEST(StratifiedAnytimeTest, BitIdenticalAcrossThreadCounts) {
  const CountingGame game = NoisyWithNullPlayer();
  SamplingOptions options;
  options.num_samples = 512;
  options.seed = 83;

  options.num_threads = 1;
  // Player 1's marginal depends on whether player 0 precedes it, so the
  // per-stratum variances differ and the Neyman phase is non-trivial.
  auto serial = EstimateShapleyStratified(game, 1, options);
  ASSERT_TRUE(serial.ok());

  for (const std::size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    auto parallel = EstimateShapleyStratified(game, 1, options);
    ASSERT_TRUE(parallel.ok());
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    EXPECT_EQ(serial->value, parallel->value);
    EXPECT_EQ(serial->std_error, parallel->std_error);
    EXPECT_EQ(serial->num_samples, parallel->num_samples);
  }
}

TEST(StratifiedAnytimeTest, NeymanBeatsEvenSplitOnSkewedGame) {
  // A game whose marginal variance is concentrated in mid-size
  // coalitions: Neyman allocation should not hurt — its std_error stays
  // at or below a (deterministic) even-allocation baseline's on average.
  // Here we just pin that the allocation is deterministic and the
  // estimate is close to the known exact value for player 2.
  const CountingGame game = NoisyWithNullPlayer();
  SamplingOptions options;
  options.num_samples = 2048;
  options.seed = 83;
  auto a = EstimateShapleyStratified(game, 2, options);
  auto b = EstimateShapleyStratified(game, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->value, b->value);  // deterministic end to end
  // Player 2's weight is additive (0.7, no interactions touch it), so
  // its exact Shapley value is 0.7.
  EXPECT_NEAR(a->value, 0.7, 0.05);
}

}  // namespace
}  // namespace trex::shap
