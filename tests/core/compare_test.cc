#include "core/compare.h"

#include <gtest/gtest.h>

#include <cmath>

namespace trex {
namespace {

Explanation MakeExplanation(
    std::initializer_list<std::pair<const char*, double>> scores) {
  Explanation ex;
  for (const auto& [label, value] : scores) {
    PlayerScore p;
    p.label = label;
    p.shapley = value;
    ex.ranked.push_back(std::move(p));
  }
  return ex;
}

TEST(CompareTest, IdenticalExplanations) {
  const Explanation ex =
      MakeExplanation({{"C3", 0.67}, {"C1", 0.17}, {"C2", 0.17},
                       {"C4", 0.0}});
  auto cmp = CompareExplanations(ex, ex);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, 1.0);
  EXPECT_DOUBLE_EQ(cmp->topk_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(cmp->mean_abs_shift, 0.0);
  EXPECT_EQ(cmp->common_players, 4u);
}

TEST(CompareTest, ReversedOrder) {
  const Explanation a =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"C", 1.0}});
  const Explanation b =
      MakeExplanation({{"C", 3.0}, {"B", 2.0}, {"A", 1.0}});
  auto cmp = CompareExplanations(a, b, /*top_k=*/1);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, -1.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, -1.0);
  EXPECT_DOUBLE_EQ(cmp->topk_jaccard, 0.0);  // {A} vs {C}
}

TEST(CompareTest, ValueShiftWithoutReorder) {
  const Explanation a = MakeExplanation({{"A", 0.8}, {"B", 0.2}});
  const Explanation b = MakeExplanation({{"A", 0.6}, {"B", 0.4}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
  EXPECT_NEAR(cmp->mean_abs_shift, 0.2, 1e-12);
}

TEST(CompareTest, PartialOverlapUsesCommonPlayers) {
  const Explanation a =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"X", 1.0}});
  const Explanation b =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"Y", 1.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->common_players, 2u);
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
}

TEST(CompareTest, TooFewCommonPlayersRejected) {
  const Explanation a = MakeExplanation({{"A", 1.0}, {"B", 0.5}});
  const Explanation b = MakeExplanation({{"C", 1.0}, {"D", 0.5}});
  EXPECT_FALSE(CompareExplanations(a, b).ok());
}

TEST(CompareTest, TiesHandledInTau) {
  const Explanation a = MakeExplanation({{"A", 1.0}, {"B", 1.0},
                                         {"C", 0.0}});
  const Explanation b = MakeExplanation({{"A", 1.0}, {"B", 0.5},
                                         {"C", 0.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  // tau-b with one tie in `a`: still positive, not 1.
  EXPECT_GT(cmp->kendall_tau, 0.5);
  EXPECT_LT(cmp->kendall_tau, 1.0);
}

// Hand-computed tau-b with a jointly-tied pair and mixed
// concordance/discordance: before {A:3,B:2,C:2,D:1}, after
// {A:3,B:2,C:2,D:4}. Of the 6 pairs, (B,C) is tied in both rankings,
// (A,B) and (A,C) are concordant, and every pair involving D is
// discordant. n0 = 6, n1 = n2 = 1, C = 2, D = 3:
// tau_b = (2 - 3) / sqrt((6-1)(6-1)) = -0.2.
TEST(CompareTest, KendallTauBJointTiesHandComputed) {
  const Explanation a =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"C", 2.0}, {"D", 1.0}});
  const Explanation b =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"C", 2.0}, {"D", 4.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_NEAR(cmp->kendall_tau, -0.2, 1e-12);
}

// Tied Shapley values share their average (fractional) rank; the naive
// closed form over arbitrarily broken ties would report a different
// value. before {A:2,B:1,C:1,D:0} -> ranks (1, 2.5, 2.5, 4); after
// {A:2,B:1,C:0,D:-1} -> ranks (1, 2, 3, 4). Pearson over the rank
// vectors: rho = 4.5 / sqrt(4.5 * 5) = sqrt(0.9).
TEST(CompareTest, SpearmanTiedValuesUseFractionalRanks) {
  const Explanation a =
      MakeExplanation({{"A", 2.0}, {"B", 1.0}, {"C", 1.0}, {"D", 0.0}});
  const Explanation b =
      MakeExplanation({{"A", 2.0}, {"B", 1.0}, {"C", 0.0}, {"D", -1.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_NEAR(cmp->spearman_rho, std::sqrt(0.9), 1e-12);
}

// A tie must score identically however the tied players are labeled —
// the old stable_sort ranking gave tied players distinct ranks in label
// order, so relabeling changed rho.
TEST(CompareTest, SpearmanTieInvariantUnderRelabeling) {
  const Explanation before1 =
      MakeExplanation({{"A", 2.0}, {"B", 1.0}, {"C", 1.0}, {"D", 0.0}});
  const Explanation after = MakeExplanation(
      {{"A", 2.0}, {"B", 0.5}, {"C", 1.0}, {"D", 0.0}});
  // Swap the tied players' labels in `before`.
  const Explanation before2 =
      MakeExplanation({{"A", 2.0}, {"C", 1.0}, {"B", 1.0}, {"D", 0.0}});
  auto cmp1 = CompareExplanations(before1, after);
  auto cmp2 = CompareExplanations(before2, after);
  ASSERT_TRUE(cmp1.ok());
  ASSERT_TRUE(cmp2.ok());
  EXPECT_DOUBLE_EQ(cmp1->spearman_rho, cmp2->spearman_rho);
  EXPECT_DOUBLE_EQ(cmp1->kendall_tau, cmp2->kendall_tau);
}

// Identical explanations stay perfectly correlated even with ties.
TEST(CompareTest, IdenticalWithTiesIsPerfectCorrelation) {
  const Explanation ex =
      MakeExplanation({{"A", 1.0}, {"B", 1.0}, {"C", 0.0}});
  auto cmp = CompareExplanations(ex, ex);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, 1.0);
}

// An entirely tied side has no defined rank correlation: both metrics
// report 0 by convention instead of dividing by zero.
TEST(CompareTest, FullyTiedSideReportsZero) {
  const Explanation flat =
      MakeExplanation({{"A", 1.0}, {"B", 1.0}, {"C", 1.0}});
  const Explanation ranked =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"C", 1.0}});
  auto cmp = CompareExplanations(flat, ranked);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 0.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, 0.0);
}

TEST(CompareTest, TopKJaccardPartial) {
  const Explanation a =
      MakeExplanation({{"A", 4.0}, {"B", 3.0}, {"C", 2.0}, {"D", 1.0}});
  const Explanation b =
      MakeExplanation({{"A", 4.0}, {"C", 3.0}, {"B", 2.0}, {"D", 1.0}});
  auto cmp = CompareExplanations(a, b, /*top_k=*/2);
  ASSERT_TRUE(cmp.ok());
  // Top-2: {A,B} vs {A,C} -> 1/3.
  EXPECT_NEAR(cmp->topk_jaccard, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace trex
