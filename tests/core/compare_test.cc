#include "core/compare.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

Explanation MakeExplanation(
    std::initializer_list<std::pair<const char*, double>> scores) {
  Explanation ex;
  for (const auto& [label, value] : scores) {
    PlayerScore p;
    p.label = label;
    p.shapley = value;
    ex.ranked.push_back(std::move(p));
  }
  return ex;
}

TEST(CompareTest, IdenticalExplanations) {
  const Explanation ex =
      MakeExplanation({{"C3", 0.67}, {"C1", 0.17}, {"C2", 0.17},
                       {"C4", 0.0}});
  auto cmp = CompareExplanations(ex, ex);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, 1.0);
  EXPECT_DOUBLE_EQ(cmp->topk_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(cmp->mean_abs_shift, 0.0);
  EXPECT_EQ(cmp->common_players, 4u);
}

TEST(CompareTest, ReversedOrder) {
  const Explanation a =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"C", 1.0}});
  const Explanation b =
      MakeExplanation({{"C", 3.0}, {"B", 2.0}, {"A", 1.0}});
  auto cmp = CompareExplanations(a, b, /*top_k=*/1);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, -1.0);
  EXPECT_DOUBLE_EQ(cmp->spearman_rho, -1.0);
  EXPECT_DOUBLE_EQ(cmp->topk_jaccard, 0.0);  // {A} vs {C}
}

TEST(CompareTest, ValueShiftWithoutReorder) {
  const Explanation a = MakeExplanation({{"A", 0.8}, {"B", 0.2}});
  const Explanation b = MakeExplanation({{"A", 0.6}, {"B", 0.4}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
  EXPECT_NEAR(cmp->mean_abs_shift, 0.2, 1e-12);
}

TEST(CompareTest, PartialOverlapUsesCommonPlayers) {
  const Explanation a =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"X", 1.0}});
  const Explanation b =
      MakeExplanation({{"A", 3.0}, {"B", 2.0}, {"Y", 1.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->common_players, 2u);
  EXPECT_DOUBLE_EQ(cmp->kendall_tau, 1.0);
}

TEST(CompareTest, TooFewCommonPlayersRejected) {
  const Explanation a = MakeExplanation({{"A", 1.0}, {"B", 0.5}});
  const Explanation b = MakeExplanation({{"C", 1.0}, {"D", 0.5}});
  EXPECT_FALSE(CompareExplanations(a, b).ok());
}

TEST(CompareTest, TiesHandledInTau) {
  const Explanation a = MakeExplanation({{"A", 1.0}, {"B", 1.0},
                                         {"C", 0.0}});
  const Explanation b = MakeExplanation({{"A", 1.0}, {"B", 0.5},
                                         {"C", 0.0}});
  auto cmp = CompareExplanations(a, b);
  ASSERT_TRUE(cmp.ok());
  // tau-b with one tie in `a`: still positive, not 1.
  EXPECT_GT(cmp->kendall_tau, 0.5);
  EXPECT_LT(cmp->kendall_tau, 1.0);
}

TEST(CompareTest, TopKJaccardPartial) {
  const Explanation a =
      MakeExplanation({{"A", 4.0}, {"B", 3.0}, {"C", 2.0}, {"D", 1.0}});
  const Explanation b =
      MakeExplanation({{"A", 4.0}, {"C", 3.0}, {"B", 2.0}, {"D", 1.0}});
  auto cmp = CompareExplanations(a, b, /*top_k=*/2);
  ASSERT_TRUE(cmp.ok());
  // Top-2: {A,B} vs {A,C} -> 1/3.
  EXPECT_NEAR(cmp->topk_jaccard, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace trex
