#include "serving/session.h"

#include <gtest/gtest.h>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"

namespace trex {
namespace {

TRexSession MakeSession() {
  return TRexSession(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                     data::SoccerDirtyTable());
}

TEST(SessionTest, RepairProducesFigure2Diff) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  ASSERT_TRUE(session.has_repair());
  EXPECT_EQ(session.clean(), data::SoccerCleanTable());
  const auto& repaired = session.repaired_cells();
  ASSERT_EQ(repaired.size(), 2u);
  EXPECT_EQ(repaired[0].cell, data::SoccerCell(5, "City"));
  EXPECT_EQ(repaired[0].old_value, Value("Capital"));
  EXPECT_EQ(repaired[0].new_value, Value("Madrid"));
  EXPECT_EQ(repaired[1].cell, data::SoccerTargetCell());
}

TEST(SessionTest, CellAtResolvesNames) {
  TRexSession session = MakeSession();
  auto cell = session.CellAt(4, "Country");
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(*cell, data::SoccerTargetCell());
  EXPECT_FALSE(session.CellAt(99, "Country").ok());
  EXPECT_FALSE(session.CellAt(0, "Nope").ok());
}

TEST(SessionTest, ExplainBeforeRepairRejected) {
  TRexSession session = MakeSession();
  auto ex = session.ExplainConstraints(data::SoccerTargetCell());
  EXPECT_FALSE(ex.ok());
}

TEST(SessionTest, SubmitExplainBeforeRepairReturnsRejectedTicket) {
  TRexSession session = MakeSession();
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  serving::Ticket ticket = session.SubmitExplain(request);
  EXPECT_FALSE(ticket.valid());
  // Resolved with a recoverable error, like the synchronous paths — no
  // crash on Wait().
  auto result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, SubmitExplainMatchesSynchronousPath) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  const CellRef target = data::SoccerTargetCell();

  auto sync = session.ExplainConstraints(target);
  ASSERT_TRUE(sync.ok()) << sync.status();

  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  serving::Ticket ticket = session.SubmitExplain(request);
  ASSERT_TRUE(ticket.valid());
  auto async_result = ticket.Wait();
  ASSERT_TRUE(async_result.ok()) << async_result.status();
  const Explanation& ex = *async_result->explanation;
  ASSERT_EQ(ex.ranked.size(), sync->ranked.size());
  for (std::size_t i = 0; i < ex.ranked.size(); ++i) {
    EXPECT_EQ(ex.ranked[i].label, sync->ranked[i].label);
    EXPECT_EQ(ex.ranked[i].shapley, sync->ranked[i].shapley);
  }
}

TEST(SessionTest, ExplainConstraintsAfterRepair) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  auto ex = session.ExplainConstraints(data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_EQ(ex->ranked[0].label, "C3");
}

TEST(SessionTest, ExplainCellsAfterRepair) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 100;
  auto ex = session.ExplainCells(data::SoccerTargetCell(), options);
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_FALSE(ex->ranked.empty());
}

TEST(SessionTest, ExplainSingleCellWorks) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 100;
  auto score = session.ExplainSingleCell(
      data::SoccerTargetCell(), data::SoccerCell(5, "League"), options);
  ASSERT_TRUE(score.ok());
  EXPECT_GT(score->shapley, 0.0);
}

TEST(SessionTest, ExplainConstraintInteractions) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  auto interactions =
      session.ExplainConstraintInteractions(data::SoccerTargetCell());
  ASSERT_TRUE(interactions.ok()) << interactions.status();
  ASSERT_EQ(interactions->size(), 6u);  // C(4,2) pairs
  // Strongest pair first: the C1-C2 complement.
  EXPECT_EQ(interactions->front().label_a, "C1");
  EXPECT_EQ(interactions->front().label_b, "C2");
  EXPECT_GT(interactions->front().interaction, 0.0);
  // Requires a repair.
  TRexSession fresh = MakeSession();
  EXPECT_FALSE(fresh.ExplainConstraintInteractions(data::SoccerTargetCell())
                   .ok());
}

TEST(SessionTest, EditInvalidatesRepair) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.Repair().ok());
  ASSERT_TRUE(
      session.SetDirtyCell(data::SoccerCell(5, "City"), Value("Madrid"))
          .ok());
  EXPECT_FALSE(session.has_repair());
  // Explanation now requires a fresh repair.
  EXPECT_FALSE(session.ExplainConstraints(data::SoccerTargetCell()).ok());
  ASSERT_TRUE(session.Repair().ok());
  EXPECT_TRUE(session.has_repair());
}

TEST(SessionTest, FixingCityByHandStillRepairsCountry) {
  // The §4 iteration loop: the user fixes t5[City] manually; re-running
  // the repair still fixes t5[Country] via C2/C3.
  TRexSession session = MakeSession();
  ASSERT_TRUE(
      session.SetDirtyCell(data::SoccerCell(5, "City"), Value("Madrid"))
          .ok());
  ASSERT_TRUE(session.Repair().ok());
  EXPECT_EQ(session.clean().at(data::SoccerTargetCell()), Value("Spain"));
  EXPECT_EQ(session.repaired_cells().size(), 1u);
}

TEST(SessionTest, RemoveConstraintChangesRepair) {
  TRexSession session = MakeSession();
  ASSERT_TRUE(session.RemoveConstraint("C3").ok());
  EXPECT_EQ(session.dcs().size(), 3u);
  ASSERT_TRUE(session.Repair().ok());
  // C1+C2 still repair the country.
  EXPECT_EQ(session.clean().at(data::SoccerTargetCell()), Value("Spain"));

  ASSERT_TRUE(session.RemoveConstraint("C2").ok());
  ASSERT_TRUE(session.Repair().ok());
  // Only C1 remains relevant: city fixed, country not.
  EXPECT_EQ(session.clean().at(data::SoccerTargetCell()), Value("España"));
}

TEST(SessionTest, RemoveUnknownConstraintFails) {
  TRexSession session = MakeSession();
  EXPECT_FALSE(session.RemoveConstraint("C9").ok());
}

TEST(SessionTest, AddConstraint) {
  TRexSession session = MakeSession();
  auto dc = dc::ParseDc("C5: !(t1.Year > 2020)", data::SoccerSchema());
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(session.AddConstraint(*dc).ok());
  EXPECT_EQ(session.dcs().size(), 5u);
  // Duplicate name rejected.
  EXPECT_FALSE(session.AddConstraint(*dc).ok());
}

TEST(SessionTest, ReplaceConstraint) {
  TRexSession session = MakeSession();
  // Replace C3 (League -> Country) with a no-op-ish variant binding on
  // Team instead.
  auto weaker =
      dc::ParseDc("C3: !(t1.Team == t2.Team & t1.Country != t2.Country)",
                  data::SoccerSchema());
  ASSERT_TRUE(weaker.ok());
  ASSERT_TRUE(session.ReplaceConstraint(*weaker).ok());
  EXPECT_EQ(session.dcs().size(), 4u);
  ASSERT_TRUE(session.Repair().ok());
  // Team Real Madrid pairs still force Spain.
  EXPECT_EQ(session.clean().at(data::SoccerTargetCell()), Value("Spain"));

  auto unknown =
      dc::ParseDc("C9: !(t1.Year > 2020)", data::SoccerSchema());
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(session.ReplaceConstraint(*unknown).ok());
}

TEST(SessionTest, SetCellOutOfRangeFails) {
  TRexSession session = MakeSession();
  EXPECT_FALSE(session.SetDirtyCell(CellRef{99, 0}, Value("x")).ok());
}

TEST(SessionDeathTest, CleanBeforeRepairAborts) {
  TRexSession session = MakeSession();
  EXPECT_DEATH(session.clean(), "Repair");
}

}  // namespace
}  // namespace trex
