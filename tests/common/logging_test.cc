#include "common/logging.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

TEST(LoggingTest, LogLevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, FilteredLogDoesNotEvaluateStream) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto side_effect = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  TREX_LOG(DEBUG) << side_effect();
  TREX_LOG(INFO) << side_effect();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(original);
}

TEST(LoggingTest, PassingCheckDoesNotAbort) {
  TREX_CHECK(1 + 1 == 2) << "never shown";
  TREX_CHECK_EQ(2, 2);
  TREX_CHECK_NE(2, 3);
  TREX_CHECK_LT(1, 2);
  TREX_CHECK_LE(2, 2);
  TREX_CHECK_GT(3, 2);
  TREX_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ TREX_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FailingCheckEqAborts) {
  EXPECT_DEATH({ TREX_CHECK_EQ(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace trex
