#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace trex {
namespace {

TEST(HashCombineTest, OrderSensitive) {
  const std::size_t a = HashCombine(HashCombine(0, 1), 2);
  const std::size_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(17, 42), HashCombine(17, 42));
}

TEST(HashMixTest, MixesStdHashables) {
  const std::size_t h1 = HashMix(0, std::string("abc"));
  const std::size_t h2 = HashMix(0, std::string("abd"));
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, HashMix(0, std::string("abc")));
}

TEST(Fnv1aTest, KnownProperties) {
  // Empty input returns the offset basis.
  EXPECT_EQ(Fnv1a(std::string_view(""), 0xcbf29ce484222325ULL),
            0xcbf29ce484222325ULL);
  // Single-byte avalanche.
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  // Deterministic.
  EXPECT_EQ(Fnv1a("hello world"), Fnv1a("hello world"));
}

TEST(Fnv1aTest, SeedChaining) {
  // Hashing "ab" should equal hashing "a" then "b" with the chained seed.
  const std::uint64_t chained =
      Fnv1a(std::string_view("b"), Fnv1a("a"));
  EXPECT_EQ(Fnv1a("ab"), chained);
}

TEST(Fnv1aTest, BytesAndStringViewAgree) {
  const char data[] = {'a', 'b', 'c'};
  EXPECT_EQ(Fnv1aBytes(data, 3), Fnv1a("abc"));
}

TEST(Fnv1aTest, FewCollisionsOnSmallStrings) {
  std::set<std::uint64_t> hashes;
  int count = 0;
  for (char a = 'a'; a <= 'z'; ++a) {
    for (char b = 'a'; b <= 'z'; ++b) {
      std::string s{a, b};
      hashes.insert(Fnv1a(s));
      ++count;
    }
  }
  EXPECT_EQ(static_cast<int>(hashes.size()), count);
}

}  // namespace
}  // namespace trex
