#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace trex {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(29);
  const auto perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, PermutationOfZeroAndOne) {
  Rng rng(31);
  EXPECT_TRUE(rng.Permutation(0).empty());
  const auto single = rng.Permutation(1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 0u);
}

TEST(RngTest, PermutationsAreUniformish) {
  // All 6 permutations of 3 elements should appear with roughly equal
  // frequency.
  Rng rng(37);
  std::map<std::vector<std::size_t>, int> counts;
  const int n = 6000;
  for (int i = 0; i < n; ++i) ++counts[rng.Permutation(3)];
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 6.0, 0.03);
  }
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, UniformWhenExponentZero) {
  const auto cdf = ZipfTable(4, 0.0);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_NEAR(cdf[0], 0.25, 1e-12);
  EXPECT_NEAR(cdf[1], 0.50, 1e-12);
  EXPECT_NEAR(cdf[2], 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(47);
  const auto cdf = ZipfTable(10, 1.2);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(cdf)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], n / 4);  // rank 0 dominates
}

TEST(ZipfTest, SamplesCoverAllRanks) {
  Rng rng(53);
  const auto cdf = ZipfTable(5, 0.5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.Zipf(cdf));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(&state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(&state2), first);
  EXPECT_NE(SplitMix64(&state2), first);  // second draw differs
}

}  // namespace
}  // namespace trex
