#include "common/string_util.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TrimTest, KeepsInnerWhitespace) {
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
  EXPECT_EQ(ToUpper("HeLLo123"), "HELLO123");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  7  "), 7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(FormatDoubleTest, IntegersRenderWithoutPoint) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-10.0), "-10");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(FormatDoubleTest, FractionsKeepPrecision) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 4), "0.3333");
}

TEST(LooksLikeTest, IntDetection) {
  EXPECT_TRUE(LooksLikeInt("123"));
  EXPECT_TRUE(LooksLikeInt("-5"));
  EXPECT_TRUE(LooksLikeInt("+7"));
  EXPECT_FALSE(LooksLikeInt("1.5"));
  EXPECT_FALSE(LooksLikeInt(""));
  EXPECT_FALSE(LooksLikeInt("-"));
  EXPECT_FALSE(LooksLikeInt("12a"));
}

TEST(LooksLikeTest, DoubleDetection) {
  EXPECT_TRUE(LooksLikeDouble("1.5"));
  EXPECT_TRUE(LooksLikeDouble("-2e4"));
  EXPECT_TRUE(LooksLikeDouble("7"));
  EXPECT_FALSE(LooksLikeDouble("abc"));
}

TEST(CsvEscapeTest, PlainFieldsUnchanged) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("with space"), "with space");
}

TEST(CsvEscapeTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscapeTest, CustomSeparator) {
  EXPECT_EQ(CsvEscape("a;b", ';'), "\"a;b\"");
  EXPECT_EQ(CsvEscape("a,b", ';'), "a,b");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace trex
