#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace trex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("row 7");
  EXPECT_EQ(s.ToString(), "Not found: row 7");
}

TEST(StatusTest, WithPrefixPrepends) {
  const Status s = Status::ParseError("bad token").WithPrefix("line 3");
  EXPECT_EQ(s.message(), "line 3: bad token");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(StatusTest, WithPrefixKeepsOkUntouched) {
  EXPECT_TRUE(Status::Ok().WithPrefix("context").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "Invalid argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "Parse error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::Ok()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<std::string> bad{Status::NotFound("x")};
  EXPECT_EQ(bad.ValueOr("fallback"), "fallback");
  Result<std::string> good{std::string("value")};
  EXPECT_EQ(good.ValueOr("fallback"), "value");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  TREX_ASSIGN_OR_RETURN(int half, HalveEven(x));
  TREX_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

Status CheckDivisible(int x) {
  TREX_RETURN_NOT_OK(HalveEven(x).status());
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesValues) {
  Result<int> r = QuarterViaMacro(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterViaMacro(7).ok());
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckDivisible(4).ok());
  EXPECT_EQ(CheckDivisible(3).code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, RejectedDistinctFromCancelled) {
  const Status rejected = Status::Rejected("queue full");
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.IsRejected());
  EXPECT_FALSE(rejected.IsCancelled());
  EXPECT_EQ(rejected.code(), StatusCode::kRejected);
  EXPECT_EQ(rejected.ToString(), "Rejected: queue full");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kRejected), "Rejected");

  const Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.IsRejected());
}

}  // namespace
}  // namespace trex
