// FaultInjector: seeded, site-keyed fault schedules must be inert when
// disarmed, replayable per seed, and scoped — unscheduled sites pass
// through (but are counted), and `ScopedFaultPlan` restores the clean
// state on exit.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace trex::fault {
namespace {

// A function shaped like production code: one named site guarding a
// "dependency call" that otherwise succeeds.
Status GuardedOperation(const char* site) {
  TREX_FAULT_INJECT(site);
  return Status::Ok();
}

TEST(FaultInjectorTest, DisarmedSitesPassThrough) {
  ASSERT_FALSE(FaultInjector::Instance().armed());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(GuardedOperation("fault_test.disarmed").ok());
  }
}

TEST(FaultInjectorTest, ErrorScheduleIsReplayablePerSeed) {
  auto draw_pattern = [](std::uint64_t seed) {
    ScopedFaultPlan plan({.seed = seed,
                          .sites = {{.site = "fault_test.replay",
                                     .kind = FaultKind::kError,
                                     .probability = 0.5}}});
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(GuardedOperation("fault_test.replay").ok());
    }
    return pattern;
  };
  const std::vector<bool> first = draw_pattern(42);
  const std::vector<bool> replay = draw_pattern(42);
  const std::vector<bool> other = draw_pattern(43);
  EXPECT_EQ(first, replay);
  EXPECT_NE(first, other);  // 2^-64 odds of a false failure
}

TEST(FaultInjectorTest, TransientScheduleFailsThenRecovers) {
  ScopedFaultPlan plan({.seed = 1,
                        .sites = {{.site = "fault_test.transient",
                                   .kind = FaultKind::kTransient,
                                   .skip_first = 1,
                                   .fail_first = 2}}});
  // Hit 1 passes (skip), hits 2-3 fail, hit 4+ recovered.
  EXPECT_TRUE(GuardedOperation("fault_test.transient").ok());
  Status second = GuardedOperation("fault_test.transient");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(second.IsTransient());
  EXPECT_FALSE(GuardedOperation("fault_test.transient").ok());
  EXPECT_TRUE(GuardedOperation("fault_test.transient").ok());
  EXPECT_TRUE(GuardedOperation("fault_test.transient").ok());

  const SiteCounters counts =
      FaultInjector::Instance().counters("fault_test.transient");
  EXPECT_EQ(counts.hits, 5u);
  EXPECT_EQ(counts.injected, 2u);
}

TEST(FaultInjectorTest, ScheduleCanCarryAPermanentCode) {
  ScopedFaultPlan plan({.seed = 1,
                        .sites = {{.site = "fault_test.permanent",
                                   .kind = FaultKind::kTransient,
                                   .fail_first = 1,
                                   .code = StatusCode::kInternal}}});
  Status status = GuardedOperation("fault_test.permanent");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_FALSE(status.IsTransient());
}

TEST(FaultInjectorTest, UnscheduledSitePassesThroughButIsCounted) {
  ScopedFaultPlan plan({.seed = 9,
                        .sites = {{.site = "fault_test.elsewhere",
                                   .kind = FaultKind::kError}}});
  // Repeated hits stay pass-through: the placeholder entry must never
  // inherit a live default schedule.
  EXPECT_TRUE(GuardedOperation("fault_test.unscheduled").ok());
  EXPECT_TRUE(GuardedOperation("fault_test.unscheduled").ok());
  EXPECT_TRUE(GuardedOperation("fault_test.unscheduled").ok());
  const SiteCounters counts =
      FaultInjector::Instance().counters("fault_test.unscheduled");
  EXPECT_EQ(counts.hits, 3u);
  EXPECT_EQ(counts.injected, 0u);
}

TEST(FaultInjectorTest, LatencyKindDelaysButSucceeds) {
  ScopedFaultPlan plan(
      {.seed = 5,
       .sites = {{.site = "fault_test.latency",
                  .kind = FaultKind::kLatency,
                  .latency = std::chrono::microseconds(2000)}}});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedOperation("fault_test.latency").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(2000));
  EXPECT_EQ(FaultInjector::Instance().counters("fault_test.latency").injected,
            1u);
}

TEST(FaultInjectorTest, ScopedPlanDisarmsOnExit) {
  {
    ScopedFaultPlan plan({.seed = 2,
                          .sites = {{.site = "fault_test.scoped",
                                     .kind = FaultKind::kError,
                                     .probability = 1.0}}});
    EXPECT_TRUE(FaultInjector::Instance().armed());
    EXPECT_FALSE(GuardedOperation("fault_test.scoped").ok());
  }
  EXPECT_FALSE(FaultInjector::Instance().armed());
  EXPECT_TRUE(GuardedOperation("fault_test.scoped").ok());
}

}  // namespace
}  // namespace trex::fault
