#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace trex {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  pool.Run(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(10, 0);  // no atomics needed: inline execution
  pool.Run(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.Run(20, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.Run(0, [&](std::size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPoolTest, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.Run(1000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositiveAndCapped) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  EXPECT_LE(ThreadPool::DefaultThreads(4), 4u);
}

TEST(ThreadPoolTest, ZeroThreadsFallsBackToSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(16, 0);  // no atomics needed: inline execution
  pool.Run(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 16);
}

TEST(ThreadPoolTest, ThrowingTaskPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.Run(64,
               [&](std::size_t i) {
                 ++ran;
                 if (i == 13) throw std::runtime_error("task 13 failed");
               }),
      std::runtime_error);
  // The failing job abandons unclaimed tasks but winds down cleanly; at
  // least the throwing task ran, and nothing ran twice.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);

  // The pool is fully reusable after a failed job.
  std::atomic<int> after{0};
  pool.Run(50, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(4);
  // Every task throws; Run must surface exactly one of them (the first
  // captured) and never terminate or wedge on the rest.
  try {
    pool.Run(32, [&](std::size_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "Run should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
}

TEST(ThreadPoolTest, RunShardedThrowingTaskDoesNotDeadlock) {
  ThreadPool pool(3);
  // Pooled path: the exception must drain the job and rethrow, never
  // leave RunSharded blocked on an unfinished job.
  EXPECT_THROW(ThreadPool::RunSharded(&pool, pool.num_threads(), 16,
                                      [](std::size_t i) {
                                        if (i % 2 == 0) {
                                          throw std::runtime_error("shard");
                                        }
                                      }),
               std::runtime_error);
  // Serial path throws straight through.
  EXPECT_THROW(ThreadPool::RunSharded(nullptr, 1, 4,
                                      [](std::size_t) {
                                        throw std::runtime_error("serial");
                                      }),
               std::runtime_error);
  // Both the shared pool and the helper remain usable.
  std::atomic<int> after{0};
  ThreadPool::RunSharded(&pool, pool.num_threads(), 10,
                         [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, ReentrantRunExecutesInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  // A task that calls back into its own pool must not deadlock on the
  // job lock; the nested Run degrades to inline serial execution.
  pool.Run(4, [&](std::size_t) {
    pool.Run(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, ReentrantRunPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  pool.Run(2, [&](std::size_t) {
    try {
      pool.Run(1, [](std::size_t) { throw std::runtime_error("nested"); });
    } catch (const std::runtime_error&) {
      ++outer_failures;
    }
  });
  EXPECT_EQ(outer_failures.load(), 2);
}

}  // namespace
}  // namespace trex
