#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace trex {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  pool.Run(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> out(10, 0);  // no atomics needed: inline execution
  pool.Run(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.Run(20, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.Run(0, [&](std::size_t) { FAIL() << "no task should run"; });
}

TEST(ThreadPoolTest, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.Run(1000, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositiveAndCapped) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
  EXPECT_LE(ThreadPool::DefaultThreads(4), 4u);
}

}  // namespace
}  // namespace trex
