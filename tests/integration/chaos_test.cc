// Chaos suite: randomized (but seeded, replayable) fault schedules
// driven through `ExplainService` end to end. For every fixed seed the
// suite arms a `FaultPlan` derived from the seed — transient backend
// errors, serving-layer errors, and latency spikes — submits a mixed
// workload, and asserts the self-healing invariants:
//
//   1. Every ticket resolves (a watchdog turns a deadlock into a test
//      failure instead of a hung CI job).
//   2. Counters balance: submitted == completed + failed + cancelled +
//      shed.
//   3. Recovery is invisible in values: every completed result is
//      bit-identical to the same request in a fault-free run (the memo
//      is never poisoned; retries re-derive exactly the same numbers).
//
// The per-plan fault budget is sized under the retry budget and the
// breaker threshold so every ticket heals to completion — breaker
// trips and retry exhaustion have their own deterministic tests in
// tests/serving/retry_test.cc; this suite checks that recovery, when
// it is possible, is total and silent.
//
// CI's chaos job widens the sweep with extra seeds via the
// TREX_CHAOS_SEEDS environment variable (comma-separated integers).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "data/soccer.h"
#include "repair/faulty.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"

namespace trex::serving {
namespace {

using trex::fault::FaultKind;
using trex::fault::FaultPlan;
using trex::fault::ScopedFaultPlan;
using trex::repair::FaultyAlgorithm;
using trex::repair::FaultyOptions;

/// The eight pinned seeds; CI adds more via TREX_CHAOS_SEEDS.
std::vector<std::uint64_t> ChaosSeeds() {
  std::vector<std::uint64_t> seeds = {101, 102, 103, 104,
                                      105, 106, 107, 108};
  if (const char* extra = std::getenv("TREX_CHAOS_SEEDS")) {
    std::stringstream stream(extra);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (!token.empty()) seeds.push_back(std::stoull(token));
    }
  }
  return seeds;
}

/// The mixed workload: every explanation kind, fixed options, no
/// deadlines (deadline interactions are pinned elsewhere — here every
/// ticket must be comparable against the fault-free run).
std::vector<ExplainRequest> Workload() {
  std::vector<ExplainRequest> requests;

  ExplainRequest constraints;
  constraints.target = data::SoccerTargetCell();
  constraints.kind = ExplainKind::kConstraints;
  requests.push_back(constraints);

  ExplainRequest cells;
  cells.target = data::SoccerTargetCell();
  cells.kind = ExplainKind::kCells;
  cells.cells.policy = AbsentCellPolicy::kNull;
  cells.cells.method = CellMethod::kSampling;
  cells.cells.num_samples = 8;
  requests.push_back(cells);

  ExplainRequest interactions;
  interactions.target = data::SoccerTargetCell();
  interactions.kind = ExplainKind::kInteractions;
  requests.push_back(interactions);

  ExplainRequest removal;
  removal.target = data::SoccerTargetCell();
  removal.kind = ExplainKind::kRemovalSets;
  removal.max_removal_set_size = 2;
  requests.push_back(removal);

  ExplainRequest single;
  single.target = data::SoccerTargetCell();
  single.kind = ExplainKind::kSingleCell;
  single.cells.policy = AbsentCellPolicy::kNull;
  single.cells.num_samples = 16;
  single.single_cell = data::SoccerCell(5, "League");
  requests.push_back(single);

  ExplainRequest wide_cells;
  wide_cells.target = data::SoccerTargetCell();
  wide_cells.kind = ExplainKind::kCells;
  wide_cells.cells.policy = AbsentCellPolicy::kNull;
  wide_cells.cells.method = CellMethod::kSampling;
  wide_cells.cells.num_samples = 16;
  requests.push_back(wide_cells);

  return requests;
}

/// Derives a replayable fault plan from one chaos seed. The total
/// transient budget (at most 5 failing engine calls) stays under the
/// retry budget below, and far under the breaker's trip threshold.
FaultPlan PlanForSeed(std::uint64_t seed) {
  std::uint64_t state = seed;
  FaultPlan plan;
  plan.seed = seed;
  plan.sites.push_back(
      {.site = "repair.backend",
       .kind = FaultKind::kTransient,
       .skip_first = static_cast<std::size_t>(SplitMix64(&state) % 3),
       .fail_first = 1 + static_cast<std::size_t>(SplitMix64(&state) % 2)});
  plan.sites.push_back(
      {.site = "serving.execute",
       .kind = FaultKind::kTransient,
       .skip_first = static_cast<std::size_t>(SplitMix64(&state) % 2),
       .fail_first = 1});
  plan.sites.push_back(
      {.site = "repair.eval_constraint_miss",
       .kind = FaultKind::kTransient,
       .skip_first = static_cast<std::size_t>(SplitMix64(&state) % 4),
       .fail_first = 1 + static_cast<std::size_t>(SplitMix64(&state) % 2)});
  plan.sites.push_back(
      {.site = "repair.eval_table_miss",
       .kind = FaultKind::kLatency,
       .probability = 0.5,
       .latency = std::chrono::microseconds(200)});
  return plan;
}

ServiceOptions ChaosServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  options.retry.max_backoff = std::chrono::milliseconds(4);
  // Keep the breaker out of the way: its transitions are pinned in
  // retry_test.cc; tripping mid-heal here would turn recoverable
  // tickets into fast-fails and break the bit-identity contract.
  options.router.breaker.min_samples = 1000;
  return options;
}

/// Runs the workload through one service and returns the resolved
/// tickets in submission order.
std::vector<Result<ExplainResult>> RunWorkload(ExplainService& service) {
  const std::vector<ExplainRequest> requests = Workload();
  auto algorithm = std::make_shared<FaultyAlgorithm>(
      "chaos-backend", repair::MakeAlgorithm1(), FaultyOptions{});
  const auto table =
      std::make_shared<const Table>(data::SoccerDirtyTable());
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (const ExplainRequest& request : requests) {
    tickets.push_back(service.Submit(algorithm, data::SoccerConstraints(),
                                     table, request));
  }
  std::vector<Result<ExplainResult>> results;
  results.reserve(tickets.size());
  for (Ticket& ticket : tickets) results.push_back(ticket.Wait());
  return results;
}

void ExpectBitIdentical(const Result<ExplainResult>& chaos,
                        const Result<ExplainResult>& baseline,
                        std::size_t slot) {
  SCOPED_TRACE("workload slot " + std::to_string(slot));
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(chaos.ok()) << chaos.status();
  EXPECT_EQ(chaos->kind, baseline->kind);
  // Payload comparison is bitwise on every score; cost counters
  // (algorithm_calls, cache_hits) legitimately differ under retries.
  ASSERT_EQ(chaos->explanation.has_value(),
            baseline->explanation.has_value());
  if (chaos->explanation.has_value()) {
    const auto& a = chaos->explanation->ranked;
    const auto& b = baseline->explanation->ranked;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label);
      EXPECT_EQ(a[i].shapley, b[i].shapley);
      EXPECT_EQ(a[i].std_error, b[i].std_error);
      EXPECT_EQ(a[i].num_samples, b[i].num_samples);
    }
  }
  ASSERT_EQ(chaos->interactions.size(), baseline->interactions.size());
  for (std::size_t i = 0; i < chaos->interactions.size(); ++i) {
    EXPECT_EQ(chaos->interactions[i].label_a,
              baseline->interactions[i].label_a);
    EXPECT_EQ(chaos->interactions[i].label_b,
              baseline->interactions[i].label_b);
    EXPECT_EQ(chaos->interactions[i].interaction,
              baseline->interactions[i].interaction);
  }
  EXPECT_EQ(chaos->removal_sets, baseline->removal_sets);
  ASSERT_EQ(chaos->single_cell.has_value(),
            baseline->single_cell.has_value());
  if (chaos->single_cell.has_value()) {
    EXPECT_EQ(chaos->single_cell->label, baseline->single_cell->label);
    EXPECT_EQ(chaos->single_cell->shapley, baseline->single_cell->shapley);
    EXPECT_EQ(chaos->single_cell->std_error,
              baseline->single_cell->std_error);
  }
}

TEST(ChaosTest, RandomizedFaultSchedulesHealToBitIdenticalResults) {
  // Fault-free baseline, computed once: the ground truth every chaos
  // run must reproduce bit for bit.
  std::vector<Result<ExplainResult>> baseline;
  {
    ExplainService service(ChaosServiceOptions());
    baseline = RunWorkload(service);
  }
  for (std::size_t slot = 0; slot < baseline.size(); ++slot) {
    ASSERT_TRUE(baseline[slot].ok())
        << "fault-free baseline failed at slot " << slot << ": "
        << baseline[slot].status();
  }

  for (const std::uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));

    // Watchdog: the whole chaos run must finish — every ticket
    // resolving — well within the budget, or the suite fails instead
    // of deadlocking.
    std::vector<Result<ExplainResult>> results;
    ServiceStats stats;
    std::future<void> run = std::async(std::launch::async, [&] {
      ScopedFaultPlan plan(PlanForSeed(seed));
      ExplainService service(ChaosServiceOptions());
      results = RunWorkload(service);
      stats = service.stats();
    });
    ASSERT_EQ(run.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "chaos run deadlocked or stalled";
    run.get();

    // Fault activity actually happened (the plan was not a no-op)...
    const auto backend_counts =
        fault::FaultInjector::Instance().counters("repair.backend");
    EXPECT_GT(backend_counts.hits, 0u);

    // ...every ticket resolved, and the counters balance.
    ASSERT_EQ(results.size(), Workload().size());
    EXPECT_EQ(stats.submitted, results.size());
    EXPECT_EQ(stats.submitted,
              stats.completed + stats.failed + stats.cancelled + stats.shed);

    // The plan's fault budget is below the retry budget, so recovery
    // must be total: no failed tickets, and values bit-identical to
    // the fault-free run.
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.completed, results.size());
    for (std::size_t slot = 0; slot < results.size(); ++slot) {
      ExpectBitIdentical(results[slot], baseline[slot], slot);
    }
  }
}

TEST(ChaosTest, TelemetryAccountsForEveryRecovery) {
  // One deterministic schedule, checked closely: the stats must show
  // the retries that healed the run.
  ScopedFaultPlan plan({.seed = 7,
                        .sites = {{.site = "repair.backend",
                                   .kind = FaultKind::kTransient,
                                   .fail_first = 2}}});
  ExplainService service(ChaosServiceOptions());
  auto results = RunWorkload(service);
  for (std::size_t slot = 0; slot < results.size(); ++slot) {
    ASSERT_TRUE(results[slot].ok()) << results[slot].status();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, results.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.retries, 2u);  // two injected failures, two re-runs
  EXPECT_EQ(stats.failed_transient, 0u);
  EXPECT_EQ(stats.failed_permanent, 0u);
}

}  // namespace
}  // namespace trex::serving
