// Verifies every numeric claim in the paper against this implementation.
//
// Each test cites the claim it checks. Together these pin the
// reproduction to the paper: Figure 1 (the DC Shapley values), Figure 2
// (the repair), Example 2.2 (C1 gates the City repair), Example 2.3 (the
// subset arithmetic), Example 2.4 (cell-ranking claims and the coalition
// counts), and Example 2.5 / §2.3 (the sampling estimator).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <map>

#include "core/explainer.h"
#include "core/repair_game.h"
#include "core/shapley_exact.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace trex {
namespace {

std::shared_ptr<repair::RuleRepair> Alg() {
  static std::shared_ptr<repair::RuleRepair> alg = repair::MakeAlgorithm1();
  return alg;
}

std::map<std::string, double> Constraints() {
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  EXPECT_TRUE(ex.ok()) << ex.status();
  std::map<std::string, double> out;
  for (const PlayerScore& p : ex->ranked) out[p.label] = p.shapley;
  return out;
}

// Figure 1: Shap(C1) = 1/6, Shap(C2) = 1/6, Shap(C3) = 2/3, Shap(C4) = 0.
TEST(PaperClaims, Figure1ShapleyValues) {
  const auto values = Constraints();
  EXPECT_NEAR(values.at("C1"), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(values.at("C2"), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(values.at("C3"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(values.at("C4"), 0.0, 1e-12);
}

// Figure 2: the repair changes exactly t5[City] -> Madrid and
// t5[Country] -> Spain.
TEST(PaperClaims, Figure2Repair) {
  auto clean = Alg()->Repair(data::SoccerConstraints(),
                             data::SoccerDirtyTable());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, data::SoccerCleanTable());
}

// Example 2.2: Alg|t5[City]({C1,C2,C3}, T^d) = 1 but
// Alg|t5[City]({C2,C3}, T^d) = 0.
TEST(PaperClaims, Example22CityRepairGatedOnC1) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerCell(5, "City"));
  ASSERT_TRUE(box.ok());
  EXPECT_TRUE(box->target_was_repaired());
  EXPECT_TRUE(box->EvalConstraintSubset(0b0111));   // {C1,C2,C3}
  EXPECT_FALSE(box->EvalConstraintSubset(0b0110));  // {C2,C3}
}

// Example 2.3: Algorithm 1 repairs t5[Country] exactly for subsets
// containing {C1,C2} or C3; C1's marginal pairs are S={C2} and
// S={C2,C4} with weight 1/12 each.
TEST(PaperClaims, Example23CharacteristicFunction) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    const bool expected =
        ((mask & 0b11) == 0b11) || ((mask & 0b100) != 0);
    EXPECT_EQ(box->EvalConstraintSubset(mask), expected)
        << "mask " << mask;
  }
}

// Example 2.3's derivation: exactly 5 subsets of {C1,C2,C3} repair the
// cell ({C3}, {C1,C2}, {C1,C3}, {C2,C3}, {C1,C2,C3}); 4 contain C3.
TEST(PaperClaims, Example23FiveRepairingSubsets) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  int repairing = 0;
  int with_c3 = 0;
  for (std::uint64_t mask = 0; mask < 8; ++mask) {  // subsets of C1..C3
    if (box->EvalConstraintSubset(mask)) {
      ++repairing;
      if (mask & 0b100) ++with_c3;
    }
  }
  EXPECT_EQ(repairing, 5);
  EXPECT_EQ(with_c3, 4);
}

// Example 2.4's combinatorics: out of the 8 support cells there are
// 2^8 - 3^4 = 175 coalitions containing at least one complete
// (League, Country) pair, and 36 - 8 - 1 = 27 remaining cells.
TEST(PaperClaims, Example24CoalitionCounts) {
  int with_pair = 0;
  for (int mask = 0; mask < 256; ++mask) {
    bool pair = false;
    for (int i = 0; i < 4; ++i) {
      const int pair_bits = 0b11 << (2 * i);
      if ((mask & pair_bits) == pair_bits) pair = true;
    }
    if (pair) ++with_pair;
  }
  EXPECT_EQ(with_pair, 175);
  EXPECT_EQ(256 - 81, 175);  // 2^8 - 3^4
  EXPECT_EQ(data::SoccerDirtyTable().num_cells() - 8 - 1, 27u);
}

// Example 2.4 (and 1.1): under the paper's null-replacement definition,
// t5[League] is the top-ranked cell, t5[League] > t6[City], and
// t1[Place] contributes 0.
TEST(PaperClaims, Example24CellRanking) {
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.num_samples = 800;
  options.seed = 61;
  options.prune = false;  // include t1[Place] so we can check it
  CellExplainer explainer(options);
  auto ex = explainer.Explain(*Alg(), data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok()) << ex.status();
  std::map<std::string, double> values;
  for (const PlayerScore& p : ex->ranked) values[p.label] = p.shapley;

  EXPECT_EQ(ex->ranked[0].label, "t5[League]");
  EXPECT_GT(values.at("t5[League]"), values.at("t6[City]"));
  EXPECT_NEAR(values.at("t1[Place]"), 0.0, 1e-12);
}

// Example 2.4's support-pair argument, checked mechanically: the
// coalition {ti[League], ti[Country], t5[League]} repairs the target for
// every i in {1,2,3,6}.
TEST(PaperClaims, Example24SupportPairsRepair) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  const Table dirty = data::SoccerDirtyTable();
  for (std::size_t i : {1u, 2u, 3u, 6u}) {
    Table coalition = dirty.WithNulls(dirty.AllCells());
    auto restore = [&](CellRef cell) {
      coalition.Set(cell, dirty.at(cell));
    };
    restore(data::SoccerCell(i, "League"));
    restore(data::SoccerCell(i, "Country"));
    restore(data::SoccerCell(5, "League"));
    EXPECT_TRUE(box->EvalTable(coalition)) << "support tuple t" << i;
  }
}

// Example 2.4's C1+C2 path: {t3[Team], t3[City], t3[Country], t5[Team]}
// repairs the target with everything else nulled out.
TEST(PaperClaims, Example24C1C2CoalitionRepairs) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  const Table dirty = data::SoccerDirtyTable();
  Table coalition = dirty.WithNulls(dirty.AllCells());
  for (const char* attr : {"Team", "City", "Country"}) {
    coalition.Set(data::SoccerCell(3, attr),
                  dirty.at(data::SoccerCell(3, attr)));
  }
  coalition.Set(data::SoccerCell(5, "Team"),
                dirty.at(data::SoccerCell(5, "Team")));
  EXPECT_TRUE(box->EvalTable(coalition));
}

// §2.3 / Example 2.5: the sampling estimator converges — its estimate of
// a constraint game's Shapley value approaches the exact value as m
// grows.
TEST(PaperClaims, Section23SamplingConvergence) {
  auto box = BlackBoxRepair::Make(Alg().get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  ASSERT_TRUE(box.ok());
  ConstraintGame game(&*box);

  double previous_error = 1e9;
  for (std::size_t m : {16u, 256u, 4096u}) {
    shap::SamplingOptions options;
    options.num_samples = m;
    options.seed = 67;
    auto estimate = shap::EstimateShapleyForPlayer(game, 2, options);
    ASSERT_TRUE(estimate.ok());
    const double error = std::fabs(estimate->value - 2.0 / 3.0);
    EXPECT_LE(error, previous_error + 0.05);
    previous_error = error;
  }
  EXPECT_LE(previous_error, 0.03);
}

// §3: "the user can continue the process by changing the DCs or values
// in T^d" — removing the top-ranked DC changes the explanation.
TEST(PaperClaims, Section3IterationLoop) {
  const dc::DcSet without_c3 = data::SoccerConstraints().Without(2);
  ConstraintExplainer explainer;
  auto ex = explainer.Explain(*Alg(), without_c3, data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  // With C3 gone, C1 and C2 carry the whole repair: 1/2 each.
  std::map<std::string, double> values;
  for (const PlayerScore& p : ex->ranked) values[p.label] = p.shapley;
  EXPECT_NEAR(values.at("C1"), 0.5, 1e-12);
  EXPECT_NEAR(values.at("C2"), 0.5, 1e-12);
  EXPECT_NEAR(values.at("C4"), 0.0, 1e-12);
}

}  // namespace
}  // namespace trex
