// End-to-end workflows across modules: CSV in -> parse DCs -> repair ->
// explain -> act on the explanation -> re-repair. These mirror the
// examples/ binaries and the §4 demo scenario.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/compare.h"
#include "serving/report.h"
#include "serving/session.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"
#include "repair/fd_repair.h"
#include "repair/holoclean.h"
#include "repair/holistic.h"
#include "repair/metrics.h"
#include "table/csv.h"

namespace trex {
namespace {

TEST(EndToEnd, CsvToExplanation) {
  // Load the paper's table from CSV text, parse the DCs from text, run
  // the whole pipeline.
  const char* csv =
      "Team,City,Country,League,Year,Place\n"
      "Barcelona,Barcelona,Spain,La Liga,2017,1\n"
      "Atletico Madrid,Madrid,Spain,La Liga,2017,2\n"
      "Real Madrid,Madrid,Spain,La Liga,2017,3\n"
      "Chelsea,London,England,Premier League,2017,1\n"
      "Real Madrid,Capital,España,La Liga,2016,1\n"
      "Real Madrid,Madrid,Spain,La Liga,2015,1\n";
  auto table = ReadCsv(csv);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(*table, data::SoccerDirtyTable());

  auto dcs = dc::ParseDcSet(R"(
C1: !(t1.Team == t2.Team & t1.City != t2.City)
C2: !(t1.City == t2.City & t1.Country != t2.Country)
C3: !(t1.League == t2.League & t1.Country != t2.Country)
C4: !(t1.Team != t2.Team & t1.Year == t2.Year & t1.League == t2.League & t1.Place == t2.Place)
)",
                            table->schema());
  ASSERT_TRUE(dcs.ok()) << dcs.status();

  TRexSession session(repair::MakeAlgorithm1(), *dcs, *table);
  ASSERT_TRUE(session.Repair().ok());
  auto target = session.CellAt(4, "Country");
  ASSERT_TRUE(target.ok());
  auto ex = session.ExplainConstraints(*target);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->ranked[0].label, "C3");
  EXPECT_NEAR(ex->ranked[0].shapley, 2.0 / 3.0, 1e-12);
}

TEST(EndToEnd, DemoScenarioBadConstraintDebugging) {
  // §4: start with a deliberately bad constraint that corrupts the
  // repair of a cell, find it via the explanation, remove it, re-repair.
  auto generated = data::GenerateSoccer({.num_rows = 30, .seed = 71});
  Table dirty = generated.clean;

  // Poison pill: a wrong FD City -> Team that will rewrite Team cells.
  auto bad =
      dc::ParseDc("BAD: !(t1.City == t2.City & t1.Team != t2.Team)",
                  dirty.schema());
  ASSERT_TRUE(bad.ok());
  dc::DcSet dcs = generated.dcs;
  dcs.Add(*bad);

  // A rule repairer that acts on the bad constraint.
  std::vector<repair::RepairRule> rules{
      {"C1", repair::RuleAction::kSetMostCommon, "City", ""},
      {"C2", repair::RuleAction::kSetMostCommonGiven, "Country", "City"},
      {"C3", repair::RuleAction::kSetMostCommon, "Country", ""},
      {"BAD", repair::RuleAction::kSetMostCommonGiven, "Team", "City"}};
  auto alg = std::make_shared<repair::RuleRepair>("demo", rules);

  TRexSession session(alg, dcs, dirty);
  ASSERT_TRUE(session.Repair().ok());
  // The bad constraint rewrites some team cell wrongly.
  ASSERT_FALSE(session.repaired_cells().empty());
  const RepairedCell wrong = session.repaired_cells().front();
  EXPECT_NE(generated.clean.at(wrong.cell), wrong.new_value)
      << "the demo premise: the repair made the data worse";

  // Explain: the bad constraint must be ranked first.
  auto ex = session.ExplainConstraints(wrong.cell);
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_EQ(ex->ranked[0].label, "BAD");

  // Act on the explanation: remove the top constraint, re-repair.
  ASSERT_TRUE(session.RemoveConstraint(ex->ranked[0].label).ok());
  ASSERT_TRUE(session.Repair().ok());
  EXPECT_TRUE(session.repaired_cells().empty());  // data was clean
}

TEST(EndToEnd, DemoScenarioBadCellDebugging) {
  // §4, cell flavor: appropriate DCs, but a poisoned cell causes a wrong
  // repair; the cell explanation surfaces influential cells, the user
  // fixes one, and the repair improves.
  Table dirty = data::SoccerDirtyTable();
  // Poison: make 'Capital' the majority city for Real Madrid, so C1
  // repairs t3/t6 *away* from Madrid... instead poison t6[City].
  dirty.Set(data::SoccerCell(6, "City"), Value("Capital"));
  // Now Team 'Real Madrid' has cities {Madrid(t3), Capital(t5, t6)}:
  // most common city overall is Madrid(t2,t3) vs Capital(t5,t6) — tie
  // broken by value: "Capital" < "Madrid", so C1 rewrites t3 to Capital.
  auto alg = repair::MakeAlgorithm1();
  TRexSession session(alg, data::SoccerConstraints(), dirty);
  ASSERT_TRUE(session.Repair().ok());
  const Value t3_city = session.clean().at(data::SoccerCell(3, "City"));
  ASSERT_EQ(t3_city, Value("Capital")) << "poison premise";

  // Explain the wrong repair of t3[City]; influential cells should
  // include the poisoned t6[City].
  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 400;
  options.seed = 73;
  auto ex = session.ExplainCells(data::SoccerCell(3, "City"), options);
  ASSERT_TRUE(ex.ok()) << ex.status();
  std::map<std::string, double> values;
  for (const PlayerScore& p : ex->ranked) values[p.label] = p.shapley;
  EXPECT_GT(values.at("t6[City]"), 0.0);

  // Fix the poisoned cell and re-repair: t3 keeps Madrid.
  ASSERT_TRUE(
      session.SetDirtyCell(data::SoccerCell(6, "City"), Value("Madrid"))
          .ok());
  ASSERT_TRUE(session.Repair().ok());
  EXPECT_EQ(session.clean().at(data::SoccerCell(3, "City")),
            Value("Madrid"));
  EXPECT_EQ(session.clean().at(data::SoccerTargetCell()), Value("Spain"));
}

TEST(EndToEnd, AllRepairersAreExplainable) {
  // T-REx is black-box: every bundled repairer must support the full
  // explain pipeline on the paper's table.
  const Table dirty = data::SoccerDirtyTable();
  const dc::DcSet dcs = data::SoccerConstraints();

  std::vector<std::shared_ptr<repair::RepairAlgorithm>> algorithms;
  algorithms.push_back(repair::MakeAlgorithm1());
  algorithms.push_back(std::make_shared<repair::HoloCleanRepair>());
  algorithms.push_back(std::make_shared<repair::HolisticRepair>());
  algorithms.push_back(std::make_shared<repair::FdRepair>());

  for (const auto& alg : algorithms) {
    TRexSession session(alg, dcs, dirty);
    ASSERT_TRUE(session.Repair().ok()) << alg->name();
    // All four algorithms fix t5[Country] on this table.
    ASSERT_EQ(session.clean().at(data::SoccerTargetCell()), Value("Spain"))
        << alg->name();

    auto constraint_ex =
        session.ExplainConstraints(data::SoccerTargetCell());
    ASSERT_TRUE(constraint_ex.ok()) << alg->name() << ": "
                                    << constraint_ex.status();
    EXPECT_EQ(constraint_ex->ranked.size(), 4u) << alg->name();
    EXPECT_GT(constraint_ex->TotalAttribution(), 0.0) << alg->name();

    CellExplainerOptions options;
    options.policy = AbsentCellPolicy::kNull;
    options.num_samples = 60;
    auto cell_ex =
        session.ExplainCells(data::SoccerTargetCell(), options);
    ASSERT_TRUE(cell_ex.ok()) << alg->name() << ": " << cell_ex.status();
    EXPECT_FALSE(cell_ex->ranked.empty()) << alg->name();
  }
}

TEST(EndToEnd, RepairQualityPipelineOnSyntheticData) {
  auto generated = data::GenerateSoccer({.num_rows = 60, .seed = 79});
  const Schema schema = generated.clean.schema();
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.04;
  inject.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
  inject.seed = 80;
  auto injected = data::InjectErrors(generated.clean, inject);

  repair::FdRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  auto quality = repair::EvaluateRepair(injected.dirty, *repaired,
                                        generated.clean, generated.dcs);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->f1, 0.5) << quality->ToString();
}

TEST(EndToEnd, ExplanationComparisonAcrossIterateLoop) {
  // §3's iterate loop, quantified: explain, remove the top constraint,
  // re-repair, re-explain, and measure how the explanation shifted.
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  ASSERT_TRUE(session.Repair().ok());
  auto before = session.ExplainConstraints(data::SoccerTargetCell());
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(session.RemoveConstraint("C3").ok());
  ASSERT_TRUE(session.Repair().ok());
  auto after = session.ExplainConstraints(data::SoccerTargetCell());
  ASSERT_TRUE(after.ok());  // C1+C2 still repair the cell

  auto cmp = CompareExplanations(*before, *after, /*top_k=*/2);
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  EXPECT_EQ(cmp->common_players, 3u);  // C1, C2, C4
  // C1 and C2 jumped from 1/6 to 1/2 each: a large mean shift.
  EXPECT_GT(cmp->mean_abs_shift, 0.2);
  // Their relative order (tie) and C4's bottom rank are preserved.
  EXPECT_GE(cmp->kendall_tau, 0.99);
}

TEST(EndToEnd, BlackBoxCacheNeverChangesOutcomes) {
  // Property: memoization must be semantically invisible. Evaluate a
  // batch of random cell coalitions with the cache on and off and
  // require identical outcomes.
  auto alg = repair::MakeAlgorithm1();
  auto cached = BlackBoxRepair::Make(alg.get(), data::SoccerConstraints(),
                                     data::SoccerDirtyTable(),
                                     data::SoccerTargetCell());
  auto uncached = BlackBoxRepair::Make(alg.get(),
                                       data::SoccerConstraints(),
                                       data::SoccerDirtyTable(),
                                       data::SoccerTargetCell());
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(uncached.ok());
  uncached->set_cache_enabled(false);

  Rng rng(4242);
  const Table dirty = data::SoccerDirtyTable();
  for (int i = 0; i < 60; ++i) {
    Table perturbed = dirty;
    for (const CellRef& cell : dirty.AllCells()) {
      if (rng.Bernoulli(0.4)) perturbed.Set(cell, Value::Null());
    }
    EXPECT_EQ(cached->EvalTable(perturbed),
              uncached->EvalTable(perturbed))
        << "iteration " << i;
    // Repeat the same table to exercise the cache-hit path.
    EXPECT_EQ(cached->EvalTable(perturbed),
              uncached->EvalTable(perturbed));
  }
  EXPECT_GT(cached->num_cache_hits(), 0u);
  EXPECT_EQ(uncached->num_cache_hits(), 0u);
}

TEST(EndToEnd, ReportsRenderForRealSession) {
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  ASSERT_TRUE(session.Repair().ok());
  const std::string screen = RenderRepairScreen(session);
  EXPECT_NE(screen.find("Capital"), std::string::npos);

  auto ex = session.ExplainConstraints(data::SoccerTargetCell());
  ASSERT_TRUE(ex.ok());
  const std::string ranking = RenderRanking(*ex);
  EXPECT_NE(ranking.find("C3"), std::string::npos);
  const std::string json = ExplanationToJson(*ex);
  EXPECT_NE(json.find("\"ranking\""), std::string::npos);
}

}  // namespace
}  // namespace trex
