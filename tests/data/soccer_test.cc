#include "data/soccer.h"

#include <gtest/gtest.h>

#include "dc/violation.h"
#include "repair/soccer_algorithm1.h"

namespace trex::data {
namespace {

TEST(SoccerDataTest, SchemaMatchesPaper) {
  const Schema schema = SoccerSchema();
  EXPECT_EQ(schema.size(), 6u);
  EXPECT_EQ(schema.attribute(0).name, "Team");
  EXPECT_EQ(schema.attribute(1).name, "City");
  EXPECT_EQ(schema.attribute(2).name, "Country");
  EXPECT_EQ(schema.attribute(3).name, "League");
  EXPECT_EQ(schema.attribute(4).name, "Year");
  EXPECT_EQ(schema.attribute(5).name, "Place");
}

TEST(SoccerDataTest, TableHas36Cells) {
  // Example 2.4: 36 cells total (6 tuples x 6 attributes).
  EXPECT_EQ(SoccerDirtyTable().num_cells(), 36u);
  EXPECT_EQ(SoccerCleanTable().num_cells(), 36u);
}

TEST(SoccerDataTest, DirtyCellsAreExactlyT5CityAndCountry) {
  const Table dirty = SoccerDirtyTable();
  const Table clean = SoccerCleanTable();
  std::size_t diffs = 0;
  for (const CellRef& cell : dirty.AllCells()) {
    if (dirty.at(cell) != clean.at(cell)) ++diffs;
  }
  EXPECT_EQ(diffs, 2u);
  EXPECT_EQ(dirty.at(SoccerCell(5, "City")), Value("Capital"));
  EXPECT_EQ(dirty.at(SoccerCell(5, "Country")), Value("España"));
  EXPECT_EQ(clean.at(SoccerCell(5, "City")), Value("Madrid"));
  EXPECT_EQ(clean.at(SoccerCell(5, "Country")), Value("Spain"));
}

TEST(SoccerDataTest, FourLaLigaSupportPairs) {
  // Example 2.4 requires (League='La Liga', Country='Spain') pairs in
  // tuples t1, t2, t3, t6 of the dirty table.
  const Table dirty = SoccerDirtyTable();
  for (std::size_t row : {1u, 2u, 3u, 6u}) {
    EXPECT_EQ(dirty.at(SoccerCell(row, "League")), Value("La Liga"))
        << "t" << row;
    EXPECT_EQ(dirty.at(SoccerCell(row, "Country")), Value("Spain"))
        << "t" << row;
  }
  // t4 is from another league (so C3's support is exactly those four).
  EXPECT_NE(dirty.at(SoccerCell(4, "League")), Value("La Liga"));
}

TEST(SoccerDataTest, RealMadridTriple) {
  // t3, t5, t6 share Team 'Real Madrid'; t3/t6 have City Madrid.
  const Table dirty = SoccerDirtyTable();
  EXPECT_EQ(dirty.at(SoccerCell(3, "Team")), Value("Real Madrid"));
  EXPECT_EQ(dirty.at(SoccerCell(5, "Team")), Value("Real Madrid"));
  EXPECT_EQ(dirty.at(SoccerCell(6, "Team")), Value("Real Madrid"));
  EXPECT_EQ(dirty.at(SoccerCell(3, "City")), Value("Madrid"));
  EXPECT_EQ(dirty.at(SoccerCell(6, "City")), Value("Madrid"));
}

TEST(SoccerDataTest, ConstraintSetMatchesFigure1) {
  const dc::DcSet dcs = SoccerConstraints();
  ASSERT_EQ(dcs.size(), 4u);
  EXPECT_EQ(dcs.at(0).name(), "C1");
  EXPECT_EQ(dcs.at(3).name(), "C4");
  // C1..C3 are FDs; C4 is not.
  std::size_t lhs = 0;
  std::size_t rhs = 0;
  EXPECT_TRUE(dcs.at(0).AsFunctionalDependency(&lhs, &rhs));
  EXPECT_EQ(lhs, 0u);  // Team
  EXPECT_EQ(rhs, 1u);  // City
  EXPECT_TRUE(dcs.at(1).AsFunctionalDependency(&lhs, &rhs));
  EXPECT_EQ(lhs, 1u);  // City
  EXPECT_EQ(rhs, 2u);  // Country
  EXPECT_TRUE(dcs.at(2).AsFunctionalDependency(&lhs, &rhs));
  EXPECT_EQ(lhs, 3u);  // League
  EXPECT_EQ(rhs, 2u);  // Country
  EXPECT_FALSE(dcs.at(3).AsFunctionalDependency(nullptr, nullptr));
  EXPECT_EQ(dcs.at(3).predicates().size(), 4u);
}

TEST(SoccerDataTest, DirtyTableViolationsAreExpected) {
  const auto violations =
      dc::FindViolations(SoccerDirtyTable(), SoccerConstraints());
  // C1: t5 vs t3 and t5 vs t6 (Team Real Madrid, City differs);
  // C3: t5 vs each of t1, t2, t3, t6 (League La Liga, Country differs).
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  std::size_t c3 = 0;
  std::size_t c4 = 0;
  for (const auto& v : violations) {
    if (v.constraint_index == 0) ++c1;
    if (v.constraint_index == 1) ++c2;
    if (v.constraint_index == 2) ++c3;
    if (v.constraint_index == 3) ++c4;
  }
  EXPECT_EQ(c1, 2u);
  EXPECT_EQ(c2, 0u);  // 'Capital' is a unique city
  EXPECT_EQ(c3, 4u);
  EXPECT_EQ(c4, 0u);
}

TEST(SoccerDataTest, CleanTableIsViolationFree) {
  EXPECT_FALSE(
      dc::HasAnyViolation(SoccerCleanTable(), SoccerConstraints()));
}

TEST(SoccerDataTest, TargetCellIsT5Country) {
  EXPECT_EQ(SoccerTargetCell(), (CellRef{4, 2}));
  EXPECT_EQ(SoccerTargetCell().ToString(SoccerSchema()), "t5[Country]");
}

TEST(SoccerDataTest, Algorithm1HasFourSteps) {
  auto alg = repair::MakeAlgorithm1();
  ASSERT_EQ(alg->rules().size(), 4u);
  EXPECT_EQ(alg->rules()[0].constraint_name, "C1");
  EXPECT_EQ(alg->rules()[0].target_attribute, "City");
  EXPECT_EQ(alg->rules()[1].action, repair::RuleAction::kSetMostCommonGiven);
  EXPECT_EQ(alg->rules()[1].given_attribute, "City");
  EXPECT_EQ(alg->rules()[3].target_attribute, "Place");
}

TEST(SoccerDataTest, SoccerCellHelper) {
  EXPECT_EQ(SoccerCell(1, "Team"), (CellRef{0, 0}));
  EXPECT_EQ(SoccerCell(6, "Place"), (CellRef{5, 5}));
}

}  // namespace
}  // namespace trex::data
