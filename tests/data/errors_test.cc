#include "data/errors.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/soccer.h"
#include "dc/violation.h"

namespace trex::data {
namespace {

TEST(ErrorInjectorTest, InjectsRequestedFraction) {
  auto generated = GenerateSoccer({.num_rows = 100, .seed = 1});
  ErrorInjectorOptions options;
  options.error_rate = 0.1;
  options.seed = 2;
  auto result = InjectErrors(generated.clean, options);
  const std::size_t expected = static_cast<std::size_t>(
      0.1 * static_cast<double>(generated.clean.num_cells()) + 0.5);
  EXPECT_EQ(result.injected.size(), expected);
}

TEST(ErrorInjectorTest, GroundTruthRecordsMatchTables) {
  auto generated = GenerateSoccer({.num_rows = 60, .seed = 3});
  ErrorInjectorOptions options;
  options.error_rate = 0.08;
  options.seed = 4;
  auto result = InjectErrors(generated.clean, options);
  for (const RepairedCell& record : result.injected) {
    EXPECT_EQ(generated.clean.at(record.cell), record.old_value);
    const Value& dirty_value = result.dirty.at(record.cell);
    if (record.new_value.is_null()) {
      EXPECT_TRUE(dirty_value.is_null());
    } else {
      EXPECT_EQ(dirty_value, record.new_value);
    }
    // The injected value differs from the truth.
    if (!record.new_value.is_null()) {
      EXPECT_NE(record.new_value, record.old_value);
    }
  }
}

TEST(ErrorInjectorTest, UntouchedCellsUnchanged) {
  auto generated = GenerateSoccer({.num_rows = 40, .seed = 5});
  ErrorInjectorOptions options;
  options.error_rate = 0.05;
  options.seed = 6;
  auto result = InjectErrors(generated.clean, options);
  std::set<std::size_t> corrupted;
  for (const RepairedCell& record : result.injected) {
    corrupted.insert(generated.clean.LinearIndex(record.cell));
  }
  for (const CellRef& cell : generated.clean.AllCells()) {
    if (corrupted.count(generated.clean.LinearIndex(cell)) > 0) continue;
    const Value& a = generated.clean.at(cell);
    const Value& b = result.dirty.at(cell);
    if (a.is_null()) {
      EXPECT_TRUE(b.is_null());
    } else {
      EXPECT_EQ(a, b);
    }
  }
}

TEST(ErrorInjectorTest, DeterministicForSeed) {
  auto generated = GenerateSoccer({.num_rows = 40, .seed = 7});
  ErrorInjectorOptions options;
  options.error_rate = 0.1;
  options.seed = 8;
  auto a = InjectErrors(generated.clean, options);
  auto b = InjectErrors(generated.clean, options);
  EXPECT_EQ(a.dirty, b.dirty);
  EXPECT_EQ(a.injected.size(), b.injected.size());
}

TEST(ErrorInjectorTest, ColumnRestrictionRespected) {
  auto generated = GenerateSoccer({.num_rows = 60, .seed = 9});
  const Schema schema = generated.clean.schema();
  ErrorInjectorOptions options;
  options.error_rate = 0.2;
  options.columns = {*schema.IndexOf("City")};
  options.seed = 10;
  auto result = InjectErrors(generated.clean, options);
  ASSERT_FALSE(result.injected.empty());
  for (const RepairedCell& record : result.injected) {
    EXPECT_EQ(record.cell.col, *schema.IndexOf("City"));
  }
}

TEST(ErrorInjectorTest, MissingErrorsAreNulls) {
  auto generated = GenerateSoccer({.num_rows = 60, .seed = 11});
  ErrorInjectorOptions options;
  options.error_rate = 0.15;
  options.weight_swap = 0;
  options.weight_typo = 0;
  options.weight_missing = 1;
  options.seed = 12;
  auto result = InjectErrors(generated.clean, options);
  ASSERT_FALSE(result.injected.empty());
  for (const RepairedCell& record : result.injected) {
    EXPECT_TRUE(record.new_value.is_null());
  }
}

TEST(ErrorInjectorTest, TyposCreateFreshValues) {
  auto generated = GenerateSoccer({.num_rows = 60, .seed = 13});
  ErrorInjectorOptions options;
  options.error_rate = 0.1;
  options.weight_swap = 0;
  options.weight_typo = 1;
  options.weight_missing = 0;
  options.seed = 14;
  auto result = InjectErrors(generated.clean, options);
  ASSERT_FALSE(result.injected.empty());
  for (const RepairedCell& record : result.injected) {
    ASSERT_TRUE(record.new_value.is_string());
    EXPECT_NE(record.new_value.as_string().find('~'), std::string::npos);
  }
}

TEST(ErrorInjectorTest, SwapsStayInColumnDomain) {
  auto generated = GenerateSoccer({.num_rows = 80, .seed = 15});
  ErrorInjectorOptions options;
  options.error_rate = 0.1;
  options.weight_swap = 1;
  options.weight_typo = 0;
  options.weight_missing = 0;
  options.seed = 16;
  auto result = InjectErrors(generated.clean, options);
  ASSERT_FALSE(result.injected.empty());
  for (const RepairedCell& record : result.injected) {
    if (record.new_value.is_null()) continue;
    // Swapped values come from the clean column's domain (modulo typo
    // fallback for single-valued columns, marked with '~').
    bool in_domain = false;
    for (std::size_t r = 0; r < generated.clean.num_rows(); ++r) {
      if (generated.clean.at(r, record.cell.col) == record.new_value) {
        in_domain = true;
        break;
      }
    }
    const bool typo_fallback =
        record.new_value.is_string() &&
        record.new_value.as_string().find('~') != std::string::npos;
    EXPECT_TRUE(in_domain || typo_fallback);
  }
}

// Regression: the swap domain used to be built on the partially dirtied
// table, so later swaps could draw earlier corruptions (typos like
// "X~", or other swapped-in errors) as "realistic" values. Swap sources
// must come from the *clean* column domain.
TEST(ErrorInjectorTest, SwapSourcesComeFromCleanDomain) {
  auto generated = GenerateSoccer({.num_rows = 120, .seed = 19});
  ErrorInjectorOptions options;
  options.error_rate = 0.30;  // heavy: many typos land before many swaps
  options.weight_swap = 0.5;
  options.weight_typo = 0.5;
  options.weight_missing = 0;
  options.seed = 20;
  auto result = InjectErrors(generated.clean, options);
  ASSERT_FALSE(result.injected.empty());
  // Clean per-column domains.
  std::vector<std::set<Value>> clean_domain(generated.clean.num_columns());
  for (const CellRef& cell : generated.clean.AllCells()) {
    clean_domain[cell.col].insert(generated.clean.at(cell));
  }
  std::size_t swaps = 0;
  for (const RepairedCell& record : result.injected) {
    ASSERT_FALSE(record.new_value.is_null());
    const bool is_typo =
        record.new_value.is_string() &&
        record.new_value.as_string().find('~') != std::string::npos;
    if (is_typo) continue;  // generator values never contain '~'
    ++swaps;
    EXPECT_EQ(clean_domain[record.cell.col].count(record.new_value), 1u)
        << "swap drew out-of-clean-domain value "
        << record.new_value.ToString();
  }
  EXPECT_GT(swaps, 0u);
}

TEST(ErrorInjectorTest, MaxErrorsCapsInjection) {
  auto generated = GenerateSoccer({.num_rows = 100, .seed = 21});
  ErrorInjectorOptions options;
  options.error_rate = 0.5;  // would corrupt ~300 cells uncapped
  options.max_errors = 7;
  options.seed = 22;
  auto result = InjectErrors(generated.clean, options);
  EXPECT_EQ(result.injected.size(), 7u);
  // The cap selects a prefix of the same shuffled candidate order: the
  // capped run's corruptions are a subset of the uncapped run's cells.
  ErrorInjectorOptions uncapped = options;
  uncapped.max_errors = 0;
  auto full = InjectErrors(generated.clean, uncapped);
  for (std::size_t i = 0; i < result.injected.size(); ++i) {
    EXPECT_EQ(generated.clean.LinearIndex(result.injected[i].cell),
              generated.clean.LinearIndex(full.injected[i].cell));
  }
}

TEST(ErrorInjectorTest, ZeroRateInjectsNothing) {
  const Table clean = SoccerCleanTable();
  ErrorInjectorOptions options;
  options.error_rate = 0.0;
  auto result = InjectErrors(clean, options);
  EXPECT_TRUE(result.injected.empty());
  EXPECT_EQ(result.dirty, clean);
}

TEST(ErrorInjectorTest, InjectionMakesTablesDirty) {
  // The demo setup: injected errors should create actual violations.
  auto generated = GenerateSoccer({.num_rows = 80, .seed = 17});
  const Schema schema = generated.clean.schema();
  ErrorInjectorOptions options;
  options.error_rate = 0.08;
  options.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
  options.seed = 18;
  auto result = InjectErrors(generated.clean, options);
  EXPECT_TRUE(dc::HasAnyViolation(result.dirty, generated.dcs));
}

}  // namespace
}  // namespace trex::data
