#include "data/hospital.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/errors.h"
#include "dc/violation.h"
#include "repair/holoclean.h"

namespace trex::data {
namespace {

TEST(HospitalTest, SchemaShape) {
  const Schema schema = HospitalSchema();
  EXPECT_EQ(schema.size(), 8u);
  EXPECT_TRUE(schema.Contains("Provider"));
  EXPECT_TRUE(schema.Contains("Zip"));
  EXPECT_TRUE(schema.Contains("Score"));
}

TEST(HospitalTest, GeneratesCleanConsistentData) {
  auto generated = GenerateHospital({.num_rows = 150, .seed = 1});
  EXPECT_GT(generated.clean.num_rows(), 0u);
  EXPECT_LE(generated.clean.num_rows(), 150u);
  EXPECT_FALSE(dc::HasAnyViolation(generated.clean, generated.dcs));
}

TEST(HospitalTest, FiveConstraints) {
  auto generated = GenerateHospital({.num_rows = 20, .seed = 2});
  EXPECT_EQ(generated.dcs.size(), 5u);
  EXPECT_EQ(generated.dcs.at(0).name(), "H1");
  // H1 (Zip -> City) is FD-shaped.
  std::size_t lhs = 0;
  std::size_t rhs = 0;
  EXPECT_TRUE(generated.dcs.at(0).AsFunctionalDependency(&lhs, &rhs));
}

TEST(HospitalTest, ZipDeterminesCityAndState) {
  auto generated = GenerateHospital({.num_rows = 200, .seed = 3});
  std::map<Value, std::pair<Value, Value>> zip_geo;
  const Table& t = generated.clean;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const Value zip = t.Cell(r, "Zip");
    const auto geo =
        std::make_pair(t.Cell(r, "City"), t.Cell(r, "State"));
    auto [it, inserted] = zip_geo.emplace(zip, geo);
    if (!inserted) {
      EXPECT_EQ(it->second.first, geo.first);
      EXPECT_EQ(it->second.second, geo.second);
    }
  }
  EXPECT_GT(zip_geo.size(), 1u);
}

TEST(HospitalTest, DeterministicForSeed) {
  auto a = GenerateHospital({.num_rows = 80, .seed = 4});
  auto b = GenerateHospital({.num_rows = 80, .seed = 4});
  EXPECT_EQ(a.clean, b.clean);
}

TEST(HospitalTest, ProviderMeasurePairsUnique) {
  auto generated = GenerateHospital({.num_rows = 180, .seed = 5});
  const Table& t = generated.clean;
  std::set<std::pair<std::int64_t, std::string>> seen;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const auto key = std::make_pair(t.Cell(r, "Provider").as_int(),
                                    t.Cell(r, "Measure").as_string());
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(HospitalTest, HoloCleanRepairsInjectedGeographyErrors) {
  auto generated = GenerateHospital({.num_rows = 120, .seed = 6});
  const Schema schema = generated.clean.schema();
  ErrorInjectorOptions inject;
  inject.error_rate = 0.03;
  inject.columns = {*schema.IndexOf("City"), *schema.IndexOf("State")};
  inject.seed = 7;
  auto injected = InjectErrors(generated.clean, inject);
  ASSERT_FALSE(injected.injected.empty());

  const std::size_t before =
      dc::FindViolations(injected.dirty, generated.dcs).size();
  ASSERT_GT(before, 0u);
  repair::HoloCleanRepair alg;
  auto repaired = alg.Repair(generated.dcs, injected.dirty);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(dc::FindViolations(*repaired, generated.dcs).size(), before);
}

}  // namespace
}  // namespace trex::data
