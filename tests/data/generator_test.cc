#include "data/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "dc/violation.h"

namespace trex::data {
namespace {

TEST(GeneratorTest, ProducesRequestedRows) {
  auto generated = GenerateSoccer({.num_rows = 50, .seed = 1});
  EXPECT_EQ(generated.clean.num_rows(), 50u);
  EXPECT_EQ(generated.clean.num_columns(), 6u);
}

TEST(GeneratorTest, CleanTableHasNoViolations) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    auto generated = GenerateSoccer({.num_rows = 120, .seed = seed});
    EXPECT_FALSE(dc::HasAnyViolation(generated.clean, generated.dcs))
        << "seed " << seed;
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateSoccer({.num_rows = 40, .seed = 5});
  auto b = GenerateSoccer({.num_rows = 40, .seed = 5});
  EXPECT_EQ(a.clean, b.clean);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateSoccer({.num_rows = 40, .seed = 5});
  auto b = GenerateSoccer({.num_rows = 40, .seed = 6});
  EXPECT_NE(a.clean, b.clean);
}

TEST(GeneratorTest, FunctionalDependenciesHoldByConstruction) {
  auto generated = GenerateSoccer({.num_rows = 100, .seed = 11});
  const Table& t = generated.clean;
  // Team -> City, City -> Country, League -> Country as value maps.
  std::map<Value, Value> team_city;
  std::map<Value, Value> league_country;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const Value team = t.Cell(r, "Team");
    const Value city = t.Cell(r, "City");
    auto [it, inserted] = team_city.emplace(team, city);
    if (!inserted) EXPECT_EQ(it->second, city);
    const Value league = t.Cell(r, "League");
    const Value country = t.Cell(r, "Country");
    auto [it2, inserted2] = league_country.emplace(league, country);
    if (!inserted2) EXPECT_EQ(it2->second, country);
  }
}

TEST(GeneratorTest, PlacesUniquePerLeagueYear) {
  auto generated = GenerateSoccer({.num_rows = 100, .seed = 13});
  const Table& t = generated.clean;
  std::set<std::tuple<std::string, std::int64_t, std::int64_t>> seen;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const auto key = std::make_tuple(t.Cell(r, "League").as_string(),
                                     t.Cell(r, "Year").as_int(),
                                     t.Cell(r, "Place").as_int());
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate (league, year, place)";
  }
}

TEST(GeneratorTest, ZipfSkewsTeamFrequencies) {
  auto skewed = GenerateSoccer(
      {.num_rows = 200, .teams_per_league = 16, .zipf_exponent = 1.5,
       .seed = 17});
  std::map<Value, std::size_t> counts;
  for (std::size_t r = 0; r < skewed.clean.num_rows(); ++r) {
    ++counts[skewed.clean.Cell(r, "Team")];
  }
  std::size_t max_count = 0;
  for (const auto& [team, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // With heavy skew the most popular team must dominate the mean.
  const double mean =
      static_cast<double>(skewed.clean.num_rows()) / counts.size();
  EXPECT_GT(static_cast<double>(max_count), 1.5 * mean);
}

TEST(GeneratorTest, MultipleCountries) {
  auto generated = GenerateSoccer(
      {.num_rows = 120, .num_countries = 6, .seed = 19});
  std::set<Value> countries;
  for (std::size_t r = 0; r < generated.clean.num_rows(); ++r) {
    countries.insert(generated.clean.Cell(r, "Country"));
  }
  EXPECT_GT(countries.size(), 2u);
}

TEST(GeneratorTest, ConstraintSetIsFigure1) {
  auto generated = GenerateSoccer({.num_rows = 10, .seed = 23});
  EXPECT_EQ(generated.dcs.size(), 4u);
  EXPECT_EQ(generated.dcs.at(2).name(), "C3");
}

// Regression: the default world holds 4 countries x 1 league x 8 teams
// x 10 years = 320 (team, year) pairs. Requesting more than that used to
// silently emit fewer rows than asked; the generator must now grow the
// world and emit exactly num_rows, still violation-free.
TEST(GeneratorTest, KeySpaceExhaustionGrowsWorld) {
  auto generated = GenerateSoccer({.num_rows = 2000, .seed = 29});
  EXPECT_EQ(generated.clean.num_rows(), 2000u);
  EXPECT_FALSE(dc::HasAnyViolation(generated.clean, generated.dcs));
}

// Saturating the key space exactly forces the deterministic backfill
// sweep (Zipf sampling alone cannot place the last pairs in bounded
// attempts) — the output must still be exact and per-seed reproducible.
TEST(GeneratorTest, SaturatedWorldStaysExactAndDeterministic) {
  const SoccerGenOptions options{.num_rows = 320, .seed = 31};
  auto a = GenerateSoccer(options);
  EXPECT_EQ(a.clean.num_rows(), 320u);
  EXPECT_FALSE(dc::HasAnyViolation(a.clean, a.dcs));
  auto b = GenerateSoccer(options);
  EXPECT_EQ(a.clean, b.clean);
}

TEST(GeneratorTest, GrownWorldKeepsFunctionalDependencies) {
  auto generated = GenerateSoccer({.num_rows = 1500, .seed = 37});
  const Table& t = generated.clean;
  ASSERT_EQ(t.num_rows(), 1500u);
  std::map<Value, Value> team_city;
  std::map<Value, Value> city_country;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    auto [it, inserted] =
        team_city.emplace(t.Cell(r, "Team"), t.Cell(r, "City"));
    if (!inserted) EXPECT_EQ(it->second, t.Cell(r, "City"));
    auto [it2, inserted2] =
        city_country.emplace(t.Cell(r, "City"), t.Cell(r, "Country"));
    if (!inserted2) EXPECT_EQ(it2->second, t.Cell(r, "Country"));
  }
}

TEST(GeneratorTest, ScalesToLargeWorlds) {
  auto generated = GenerateSoccer({.num_rows = 20000, .seed = 41});
  EXPECT_EQ(generated.clean.num_rows(), 20000u);
}

TEST(WorldGeneratorTest, ProducesRequestedTables) {
  WorldGenOptions options;
  options.table.num_rows = 50;
  options.table.seed = 43;
  options.num_tables = 3;
  auto world = GenerateWorld(options);
  ASSERT_EQ(world.tables.size(), 3u);
  for (const GeneratedData& data : world.tables) {
    EXPECT_EQ(data.clean.num_rows(), 50u);
    EXPECT_FALSE(dc::HasAnyViolation(data.clean, data.dcs));
  }
}

TEST(WorldGeneratorTest, TablesHaveDisjointContent) {
  WorldGenOptions options;
  options.table.num_rows = 60;
  options.table.seed = 47;
  options.num_tables = 3;
  auto world = GenerateWorld(options);
  for (std::size_t i = 0; i < world.tables.size(); ++i) {
    for (std::size_t j = i + 1; j < world.tables.size(); ++j) {
      EXPECT_NE(world.tables[i].clean, world.tables[j].clean)
          << "tables " << i << " and " << j << " are identical";
    }
  }
  // The per-table seed chain is disjoint from the base seed itself: the
  // first table is not simply GenerateSoccer(base).
  auto base = GenerateSoccer(options.table);
  EXPECT_NE(world.tables[0].clean, base.clean);
}

TEST(WorldGeneratorTest, DeterministicForSeed) {
  WorldGenOptions options;
  options.table.num_rows = 40;
  options.table.seed = 53;
  options.num_tables = 2;
  auto a = GenerateWorld(options);
  auto b = GenerateWorld(options);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (std::size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_EQ(a.tables[i].clean, b.tables[i].clean);
  }
}

}  // namespace
}  // namespace trex::data
