#include "table/diff.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

Table Base() {
  Table t(Schema::AllStrings({"A", "B"}));
  EXPECT_TRUE(t.AppendRow({Value("x"), Value("y")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("p"), Value("q")}).ok());
  return t;
}

TEST(DiffTest, IdenticalTablesNoDiff) {
  auto diffs = DiffTables(Base(), Base());
  ASSERT_TRUE(diffs.ok());
  EXPECT_TRUE(diffs->empty());
}

TEST(DiffTest, DetectsChangedCells) {
  Table clean = Base();
  clean.Set(0, 1, Value("changed"));
  clean.Set(1, 0, Value("other"));
  auto diffs = DiffTables(Base(), clean);
  ASSERT_TRUE(diffs.ok());
  ASSERT_EQ(diffs->size(), 2u);
  EXPECT_EQ((*diffs)[0].cell, (CellRef{0, 1}));
  EXPECT_EQ((*diffs)[0].old_value, Value("y"));
  EXPECT_EQ((*diffs)[0].new_value, Value("changed"));
  EXPECT_EQ((*diffs)[1].cell, (CellRef{1, 0}));
}

TEST(DiffTest, RowMajorOrder) {
  Table clean = Base();
  clean.Set(1, 1, Value("a"));
  clean.Set(0, 0, Value("b"));
  auto diffs = DiffTables(Base(), clean);
  ASSERT_TRUE(diffs.ok());
  ASSERT_EQ(diffs->size(), 2u);
  EXPECT_LT((*diffs)[0].cell, (*diffs)[1].cell);
}

TEST(DiffTest, NullTransitionsAreDiffs) {
  Table clean = Base();
  clean.Set(0, 0, Value::Null());
  auto one_way = DiffTables(Base(), clean);
  ASSERT_TRUE(one_way.ok());
  ASSERT_EQ(one_way->size(), 1u);
  EXPECT_TRUE((*one_way)[0].new_value.is_null());

  auto other_way = DiffTables(clean, Base());
  ASSERT_TRUE(other_way.ok());
  ASSERT_EQ(other_way->size(), 1u);
  EXPECT_TRUE((*other_way)[0].old_value.is_null());
}

TEST(DiffTest, BothNullIsNoDiff) {
  Table a = Base();
  Table b = Base();
  a.Set(0, 0, Value::Null());
  b.Set(0, 0, Value::Null());
  auto diffs = DiffTables(a, b);
  ASSERT_TRUE(diffs.ok());
  EXPECT_TRUE(diffs->empty());
}

TEST(DiffTest, ShapeMismatchErrors) {
  Table other(Schema::AllStrings({"A"}));
  EXPECT_FALSE(DiffTables(Base(), other).ok());

  Table fewer_rows(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(fewer_rows.AppendRow({Value("x"), Value("y")}).ok());
  EXPECT_FALSE(DiffTables(Base(), fewer_rows).ok());
}

TEST(DiffTest, RepairedCellToString) {
  const Schema schema = Schema::AllStrings({"Team", "Country"});
  const RepairedCell cell{CellRef{4, 1}, Value("España"), Value("Spain")};
  EXPECT_EQ(cell.ToString(schema), "t5[Country]: España -> Spain");
}

TEST(CellRepairedToTest, ChecksAgainstCleanValue) {
  const Table clean = Base();
  Table candidate = Base();
  EXPECT_TRUE(CellRepairedTo(candidate, clean, CellRef{0, 0}));
  candidate.Set(0, 0, Value("wrong"));
  EXPECT_FALSE(CellRepairedTo(candidate, clean, CellRef{0, 0}));
}

TEST(CellRepairedToTest, NullHandling) {
  Table clean = Base();
  Table candidate = Base();
  candidate.Set(0, 0, Value::Null());
  EXPECT_FALSE(CellRepairedTo(candidate, clean, CellRef{0, 0}));
  clean.Set(0, 0, Value::Null());
  EXPECT_TRUE(CellRepairedTo(candidate, clean, CellRef{0, 0}));
}

}  // namespace
}  // namespace trex
