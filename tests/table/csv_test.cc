#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace trex {
namespace {

TEST(CsvReadTest, BasicWithTypeInference) {
  auto table = ReadCsv("Team,Year,Rating\nBarca,2017,4.5\nReal,2016,4.25\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kString);
  EXPECT_EQ(table->schema().attribute(1).type, ValueType::kInt);
  EXPECT_EQ(table->schema().attribute(2).type, ValueType::kDouble);
  EXPECT_EQ(table->at(0, 0), Value("Barca"));
  EXPECT_EQ(table->at(1, 1), Value(2016));
  EXPECT_EQ(table->at(1, 2), Value(4.25));
}

TEST(CsvReadTest, NoInferenceKeepsStrings) {
  CsvOptions options;
  options.infer_types = false;
  auto table = ReadCsv("A,B\n1,2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->at(0, 0), Value("1"));
}

TEST(CsvReadTest, EmptyFieldsAreNull) {
  auto table = ReadCsv("A,B\n1,\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->at(0, 1).is_null());
  EXPECT_TRUE(table->at(1, 0).is_null());
}

TEST(CsvReadTest, NullMarkerRespected) {
  auto table = ReadCsv("A\nNULL\nvalue\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->at(0, 0).is_null());
  EXPECT_EQ(table->at(1, 0), Value("value"));
}

TEST(CsvReadTest, CustomNullMarker) {
  CsvOptions options;
  options.null_marker = "N/A";
  auto table = ReadCsv("A\nN/A\nNULL\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->at(0, 0).is_null());
  EXPECT_EQ(table->at(1, 0), Value("NULL"));
}

TEST(CsvReadTest, QuotedFields) {
  auto table = ReadCsv("A,B\n\"has,comma\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->at(0, 0), Value("has,comma"));
  EXPECT_EQ(table->at(0, 1), Value("say \"hi\""));
}

TEST(CsvReadTest, QuotedNewlines) {
  auto table = ReadCsv("A\n\"line1\nline2\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->at(0, 0), Value("line1\nline2"));
}

TEST(CsvReadTest, CrLfTolerated) {
  auto table = ReadCsv("A,B\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->at(0, 1), Value(2));
}

TEST(CsvReadTest, MissingTrailingNewlineOk) {
  auto table = ReadCsv("A\nvalue");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(CsvReadTest, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  auto table = ReadCsv("A;B\nx;y\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->at(0, 1), Value("y"));
}

TEST(CsvReadTest, ErrorOnRaggedRows) {
  auto table = ReadCsv("A,B\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, ErrorOnUnterminatedQuote) {
  auto table = ReadCsv("A\n\"oops\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvReadTest, ErrorOnEmptyInput) {
  EXPECT_FALSE(ReadCsv("").ok());
}

TEST(CsvReadTest, ErrorOnDuplicateHeader) {
  EXPECT_FALSE(ReadCsv("A,A\n1,2\n").ok());
}

TEST(CsvReadTest, MixedIntAndDoubleColumnInfersDouble) {
  auto table = ReadCsv("A\n1\n2.5\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kDouble);
}

TEST(CsvReadTest, NullsDoNotBlockIntInference) {
  // Note the two-column layout: a lone empty line would be skipped as a
  // blank record, but ",x" rows carry an explicit null first field.
  auto table = ReadCsv("A,B\n1,x\n,y\n3,z\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().attribute(0).type, ValueType::kInt);
  EXPECT_TRUE(table->at(1, 0).is_null());
  EXPECT_EQ(table->at(2, 0), Value(3));
}

TEST(CsvReadTest, BlankLinesAreSkipped) {
  auto table = ReadCsv("A\nx\n\ny\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvWriteTest, RoundTrip) {
  auto table = ReadCsv("Team,Year\n\"has,comma\",2017\nReal,2016\n");
  ASSERT_TRUE(table.ok());
  const std::string csv = WriteCsv(*table);
  auto again = ReadCsv(csv);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*table, *again);
}

TEST(CsvWriteTest, NullsRenderAsEmpty) {
  Table t(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value("x")}).ok());
  EXPECT_EQ(WriteCsv(t), "A,B\n,x\n");
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = testing::TempDir() + "/trex_csv_test.csv";
  Table t(Schema({Attribute{"A", ValueType::kString},
                  Attribute{"N", ValueType::kInt}}));
  ASSERT_TRUE(t.AppendRow({Value("v"), Value(9)}).ok());
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, t);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileGivesIOError) {
  auto result = ReadCsvFile("/nonexistent/path/definitely/missing.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace trex
