#include "table/printer.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

Table Sample() {
  Table t(Schema::AllStrings({"City", "Country"}));
  EXPECT_TRUE(t.AppendRow({Value("Madrid"), Value("Spain")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Capital"), Value("España")}).ok());
  return t;
}

TEST(PrinterTest, ContainsHeaderAndValues) {
  TablePrinter printer;
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("City"), std::string::npos);
  EXPECT_NE(out.find("Country"), std::string::npos);
  EXPECT_NE(out.find("Madrid"), std::string::npos);
  EXPECT_NE(out.find("España"), std::string::npos);
}

TEST(PrinterTest, RowLabelsArePaperStyle) {
  TablePrinter printer;
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("t1"), std::string::npos);
  EXPECT_NE(out.find("t2"), std::string::npos);
}

TEST(PrinterTest, RowLabelsCanBeDisabled) {
  PrinterOptions options;
  options.row_labels = false;
  TablePrinter printer(options);
  const std::string out = printer.Render(Sample());
  EXPECT_EQ(out.find("t1"), std::string::npos);
}

TEST(PrinterTest, DirtyMarkerWithoutAnsi) {
  TablePrinter printer;
  printer.Highlight(CellRef{1, 0}, CellStyle::kDirty);
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("*Capital*"), std::string::npos);
}

TEST(PrinterTest, RepairedMarkerWithoutAnsi) {
  TablePrinter printer;
  printer.Highlight(CellRef{0, 1}, CellStyle::kRepaired);
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("[Spain]"), std::string::npos);
}

TEST(PrinterTest, HeatMarkers) {
  TablePrinter printer;
  printer.Highlight(CellRef{0, 0}, CellStyle::kHeatLow);
  printer.Highlight(CellRef{0, 1}, CellStyle::kHeatMid);
  printer.Highlight(CellRef{1, 1}, CellStyle::kHeatHigh);
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("Madrid (+)"), std::string::npos);
  EXPECT_NE(out.find("Spain (++)"), std::string::npos);
  EXPECT_NE(out.find("España (+++)"), std::string::npos);
}

TEST(PrinterTest, AnsiModeEmitsEscapes) {
  PrinterOptions options;
  options.ansi_colors = true;
  TablePrinter printer(options);
  printer.Highlight(CellRef{1, 0}, CellStyle::kDirty);
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("\x1b[31m"), std::string::npos);
  EXPECT_NE(out.find("\x1b[0m"), std::string::npos);
}

TEST(PrinterTest, NoAnsiWithoutHighlights) {
  PrinterOptions options;
  options.ansi_colors = true;
  TablePrinter printer(options);
  const std::string out = printer.Render(Sample());
  EXPECT_EQ(out.find("\x1b["), std::string::npos);
}

TEST(PrinterTest, MarkdownModeHasPipes) {
  PrinterOptions options;
  options.markdown = true;
  TablePrinter printer(options);
  const std::string out = printer.Render(Sample());
  EXPECT_NE(out.find("| "), std::string::npos);
  EXPECT_NE(out.find(" |"), std::string::npos);
}

TEST(PrinterTest, ClearHighlightsResets) {
  TablePrinter printer;
  printer.Highlight(CellRef{1, 0}, CellStyle::kDirty);
  printer.ClearHighlights();
  const std::string out = printer.Render(Sample());
  EXPECT_EQ(out.find("*Capital*"), std::string::npos);
}

TEST(PrinterTest, NullRendersAsSymbol) {
  Table t(Schema::AllStrings({"A"}));
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  TablePrinter printer;
  EXPECT_NE(printer.Render(t).find("∅"), std::string::npos);
}

TEST(PrinterTest, ColumnsAlignToWidestCell) {
  Table t(Schema::AllStrings({"A"}));
  ASSERT_TRUE(t.AppendRow({Value("short")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a-much-longer-value")}).ok());
  TablePrinter printer;
  const std::string out = printer.Render(t);
  // Every line should have the same length (trailing padding).
  std::size_t expected = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (expected == std::string::npos) expected = len;
    EXPECT_EQ(len, expected);
    start = end + 1;
  }
}

}  // namespace
}  // namespace trex
