#include "table/stats.h"

#include <gtest/gtest.h>

#include <map>

namespace trex {
namespace {

Table CityTable() {
  // City column: Madrid x3, Barcelona x1, London x1, null x1.
  Table t(Schema::AllStrings({"City", "Country"}));
  EXPECT_TRUE(t.AppendRow({Value("Madrid"), Value("Spain")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Barcelona"), Value("Spain")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Madrid"), Value("Spain")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("London"), Value("England")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("Madrid"), Value("España")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  return t;
}

TEST(ColumnStatsTest, CountsIgnoreNulls) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  EXPECT_EQ(stats.total(), 5u);
  EXPECT_EQ(stats.num_distinct(), 3u);
  EXPECT_EQ(stats.Count(Value("Madrid")), 3u);
  EXPECT_EQ(stats.Count(Value("London")), 1u);
  EXPECT_EQ(stats.Count(Value("Paris")), 0u);
}

TEST(ColumnStatsTest, Probability) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  EXPECT_DOUBLE_EQ(stats.Probability(Value("Madrid")), 0.6);
  EXPECT_DOUBLE_EQ(stats.Probability(Value("Paris")), 0.0);
}

TEST(ColumnStatsTest, MostCommon) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  ASSERT_TRUE(stats.MostCommon().has_value());
  EXPECT_EQ(*stats.MostCommon(), Value("Madrid"));
}

TEST(ColumnStatsTest, MostCommonTieBreaksToSmallerValue) {
  Table t(Schema::AllStrings({"A"}));
  ASSERT_TRUE(t.AppendRow({Value("b")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("c")}).ok());
  const auto stats = ColumnStats::Build(t, 0);
  EXPECT_EQ(*stats.MostCommon(), Value("a"));
}

TEST(ColumnStatsTest, EmptyColumnHasNoMode) {
  Table t(Schema::AllStrings({"A"}));
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  const auto stats = ColumnStats::Build(t, 0);
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_FALSE(stats.MostCommon().has_value());
}

TEST(ColumnStatsTest, DistinctSortedAscending) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  const auto distinct = stats.DistinctSorted();
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value("Barcelona"));
  EXPECT_EQ(distinct[1], Value("London"));
  EXPECT_EQ(distinct[2], Value("Madrid"));
}

TEST(ColumnStatsTest, SampleFollowsEmpiricalDistribution) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  Rng rng(99);
  std::map<Value, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[stats.Sample(&rng)];
  EXPECT_NEAR(counts[Value("Madrid")] / static_cast<double>(n), 0.6, 0.03);
  EXPECT_NEAR(counts[Value("London")] / static_cast<double>(n), 0.2, 0.03);
  EXPECT_EQ(counts.count(Value("Paris")), 0u);
}

TEST(ColumnStatsTest, SampleDeterministicForSeed) {
  const auto stats = ColumnStats::Build(CityTable(), 0);
  Rng rng1(5);
  Rng rng2(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(stats.Sample(&rng1), stats.Sample(&rng2));
  }
}

TEST(JointStatsTest, ConditionalProbabilities) {
  const auto joint = JointStats::Build(CityTable(), 0, 1);
  // Given Madrid: Spain x2, España x1.
  EXPECT_DOUBLE_EQ(joint.ProbabilityGiven(Value("Madrid"), Value("Spain")),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(joint.ProbabilityGiven(Value("Madrid"), Value("España")),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(joint.ProbabilityGiven(Value("Paris"), Value("France")),
                   0.0);
}

TEST(JointStatsTest, MostCommonGiven) {
  const auto joint = JointStats::Build(CityTable(), 0, 1);
  EXPECT_EQ(*joint.MostCommonGiven(Value("Madrid")), Value("Spain"));
  EXPECT_EQ(*joint.MostCommonGiven(Value("London")), Value("England"));
  EXPECT_FALSE(joint.MostCommonGiven(Value("Paris")).has_value());
}

TEST(JointStatsTest, CountGiven) {
  const auto joint = JointStats::Build(CityTable(), 0, 1);
  EXPECT_EQ(joint.CountGiven(Value("Madrid")), 3u);
  EXPECT_EQ(joint.CountGiven(Value("Paris")), 0u);
}

TEST(JointStatsTest, TargetsGivenSorted) {
  const auto joint = JointStats::Build(CityTable(), 0, 1);
  const auto targets = joint.TargetsGiven(Value("Madrid"));
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], Value("España"));
  EXPECT_EQ(targets[1], Value("Spain"));
}

TEST(JointStatsTest, NullOnEitherSideExcluded) {
  Table t(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(t.AppendRow({Value("k"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value("v")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("k"), Value("v")}).ok());
  const auto joint = JointStats::Build(t, 0, 1);
  EXPECT_EQ(joint.CountGiven(Value("k")), 1u);
}

TEST(TableStatsTest, CachesAreConsistentWithDirectBuild) {
  const Table t = CityTable();
  TableStats stats(&t);
  EXPECT_EQ(stats.Column(0).total(),
            ColumnStats::Build(t, 0).total());
  EXPECT_EQ(*stats.Joint(0, 1).MostCommonGiven(Value("Madrid")),
            Value("Spain"));
  // Second lookups hit the cache and agree.
  EXPECT_EQ(stats.Column(0).total(), 5u);
  EXPECT_EQ(stats.Joint(0, 1).CountGiven(Value("Madrid")), 3u);
}

TEST(TableStatsTest, DirectionalJointKeys) {
  const Table t = CityTable();
  TableStats stats(&t);
  // P[Country|City] differs from P[City|Country].
  EXPECT_EQ(*stats.Joint(0, 1).MostCommonGiven(Value("Madrid")),
            Value("Spain"));
  EXPECT_EQ(*stats.Joint(1, 0).MostCommonGiven(Value("Spain")),
            Value("Madrid"));
}

}  // namespace
}  // namespace trex
