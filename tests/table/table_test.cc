#include "table/table.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

Table SmallTable() {
  Table t(Schema({Attribute{"A", ValueType::kString},
                  Attribute{"B", ValueType::kInt}}));
  EXPECT_TRUE(t.AppendRow({Value("x"), Value(1)}).ok());
  EXPECT_TRUE(t.AppendRow({Value("y"), Value(2)}).ok());
  EXPECT_TRUE(t.AppendRow({Value("z"), Value::Null()}).ok());
  return t;
}

TEST(TableTest, ShapeAccessors) {
  const Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_cells(), 6u);
}

TEST(TableTest, EmptyTable) {
  Table t(Schema::AllStrings({"A"}));
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_cells(), 0u);
  EXPECT_TRUE(t.AllCells().empty());
}

TEST(TableTest, DefaultConstructedTable) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 0u);
}

TEST(TableTest, CellAccess) {
  const Table t = SmallTable();
  EXPECT_EQ(t.at(0, 0), Value("x"));
  EXPECT_EQ(t.at(1, 1), Value(2));
  EXPECT_TRUE(t.at(2, 1).is_null());
  EXPECT_EQ(t.at(CellRef{1, 0}), Value("y"));
}

TEST(TableTest, NamedCellAccess) {
  const Table t = SmallTable();
  EXPECT_EQ(t.Cell(0, "A"), Value("x"));
  EXPECT_EQ(t.Cell(2, "B"), Value::Null());
}

TEST(TableTest, SetOverwrites) {
  Table t = SmallTable();
  t.Set(0, 1, Value(42));
  EXPECT_EQ(t.at(0, 1), Value(42));
  t.Set(CellRef{0, 1}, Value::Null());
  EXPECT_TRUE(t.at(0, 1).is_null());
}

TEST(TableTest, AppendRowArityChecked) {
  Table t(Schema::AllStrings({"A", "B"}));
  EXPECT_FALSE(t.AppendRow({Value("only-one")}).ok());
  EXPECT_FALSE(t.AppendRow({Value("1"), Value("2"), Value("3")}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableDeathTest, OutOfBoundsAccessAborts) {
  const Table t = SmallTable();
  EXPECT_DEATH(t.at(3, 0), "Check failed");
  EXPECT_DEATH(t.at(0, 2), "Check failed");
}

TEST(TableTest, LinearIndexMatchesVectorizationOrder) {
  // Example 2.5 vectorization: (t1[A1], t1[A2], ..., t2[A1], ...).
  const Table t = SmallTable();
  EXPECT_EQ(t.LinearIndex(CellRef{0, 0}), 0u);
  EXPECT_EQ(t.LinearIndex(CellRef{0, 1}), 1u);
  EXPECT_EQ(t.LinearIndex(CellRef{1, 0}), 2u);
  EXPECT_EQ(t.LinearIndex(CellRef{2, 1}), 5u);
}

TEST(TableTest, FromLinearIndexInverts) {
  const Table t = SmallTable();
  for (std::size_t i = 0; i < t.num_cells(); ++i) {
    EXPECT_EQ(t.LinearIndex(t.FromLinearIndex(i)), i);
  }
}

TEST(TableTest, AllCellsInRowMajorOrder) {
  const Table t = SmallTable();
  const auto cells = t.AllCells();
  ASSERT_EQ(cells.size(), 6u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(t.LinearIndex(cells[i]), i);
  }
}

TEST(TableTest, EqualityDetectsValueChange) {
  const Table a = SmallTable();
  Table b = SmallTable();
  EXPECT_EQ(a, b);
  b.Set(0, 0, Value("changed"));
  EXPECT_NE(a, b);
}

TEST(TableTest, FingerprintStableAndSensitive) {
  const Table a = SmallTable();
  Table b = SmallTable();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.Set(0, 0, Value("changed"));
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(TableTest, FingerprintDistinguishesNullFromEmpty) {
  Table a(Schema::AllStrings({"A"}));
  Table b(Schema::AllStrings({"A"}));
  EXPECT_TRUE(a.AppendRow({Value("")}).ok());
  EXPECT_TRUE(b.AppendRow({Value::Null()}).ok());
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(TableTest, FingerprintDistinguishesTypeOfSameRendering) {
  Table a(Schema::AllStrings({"A"}));
  Table b(Schema::AllStrings({"A"}));
  EXPECT_TRUE(a.AppendRow({Value("1")}).ok());
  EXPECT_TRUE(b.AppendRow({Value(1)}).ok());
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(TableTest, WithNullsMasksCells) {
  const Table t = SmallTable();
  const Table masked = t.WithNulls({CellRef{0, 0}, CellRef{1, 1}});
  EXPECT_TRUE(masked.at(0, 0).is_null());
  EXPECT_TRUE(masked.at(1, 1).is_null());
  EXPECT_EQ(masked.at(1, 0), Value("y"));
  // Original untouched.
  EXPECT_EQ(t.at(0, 0), Value("x"));
}

TEST(TableTest, CountNulls) {
  const Table t = SmallTable();
  EXPECT_EQ(t.CountNulls(), 1u);
  EXPECT_EQ(t.WithNulls(t.AllCells()).CountNulls(), 6u);
}

TEST(CellRefTest, OrderingAndEquality) {
  EXPECT_EQ((CellRef{1, 2}), (CellRef{1, 2}));
  EXPECT_NE((CellRef{1, 2}), (CellRef{2, 1}));
  EXPECT_LT((CellRef{0, 5}), (CellRef{1, 0}));
  EXPECT_LT((CellRef{1, 0}), (CellRef{1, 1}));
}

TEST(CellRefTest, PaperStyleNaming) {
  const Schema schema = Schema::AllStrings({"Team", "Country"});
  EXPECT_EQ((CellRef{4, 1}).ToString(schema), "t5[Country]");
  EXPECT_EQ((CellRef{0, 0}).ToString(schema), "t1[Team]");
  EXPECT_EQ((CellRef{0, 9}).ToString(schema), "(0,9)");  // out of schema
  EXPECT_EQ((CellRef{2, 1}).ToString(), "(2,1)");
}

}  // namespace
}  // namespace trex
