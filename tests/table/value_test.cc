#include "table/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace trex {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(std::int64_t{42}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("x").as_string(), "x");
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  EXPECT_DEATH(Value("x").as_int(), "Check failed");
  EXPECT_DEATH(Value(1).as_string(), "Check failed");
  EXPECT_DEATH(Value::Null().AsNumeric(), "Check failed");
}

TEST(ValueTest, NumericView) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsNumeric(), 3.5);
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("3").is_numeric());
  EXPECT_FALSE(Value::Null().is_numeric());
}

TEST(ValueTest, IntDoubleCrossEquality) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_GT(Value(2), Value(1.9));
}

TEST(ValueTest, CrossEqualValuesHashAlike) {
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, NullEqualsNullStructurally) {
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, TotalOrderAcrossClasses) {
  // null < numeric < string.
  EXPECT_LT(Value::Null(), Value(-100));
  EXPECT_LT(Value(1000000), Value(""));
  EXPECT_LT(Value::Null(), Value("a"));
}

TEST(ValueTest, StringOrderIsBytewise) {
  EXPECT_LT(Value("Madrid"), Value("Paris"));
  EXPECT_LT(Value("A"), Value("a"));
}

TEST(ValueTest, SortingMixedVectorIsStablyOrdered) {
  std::vector<Value> values{Value("b"), Value(2), Value::Null(),
                            Value(1.5), Value("a"), Value(1)};
  std::sort(values.begin(), values.end());
  EXPECT_TRUE(values[0].is_null());
  EXPECT_EQ(values[1], Value(1));
  EXPECT_EQ(values[2], Value(1.5));
  EXPECT_EQ(values[3], Value(2));
  EXPECT_EQ(values[4], Value("a"));
  EXPECT_EQ(values[5], Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(-1).ToString(), "-1");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("España").ToString(), "España");
  EXPECT_EQ(Value::Null().ToString(), "∅");
}

TEST(ValueTest, ParseTyped) {
  EXPECT_EQ(*Value::Parse("42", ValueType::kInt), Value(42));
  EXPECT_EQ(*Value::Parse("2.5", ValueType::kDouble), Value(2.5));
  EXPECT_EQ(*Value::Parse("abc", ValueType::kString), Value("abc"));
  EXPECT_TRUE(Value::Parse("", ValueType::kInt)->is_null());
  EXPECT_TRUE(Value::Parse("  ", ValueType::kString)->is_null());
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("abc", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("x1", ValueType::kDouble).ok());
}

TEST(ValueTest, InferNarrowestType) {
  EXPECT_TRUE(Value::Infer("42").is_int());
  EXPECT_TRUE(Value::Infer("2.5").is_double());
  EXPECT_TRUE(Value::Infer("2.5x").is_string());
  EXPECT_TRUE(Value::Infer("Madrid").is_string());
  EXPECT_TRUE(Value::Infer("").is_null());
  EXPECT_TRUE(Value::Infer("  ").is_null());
}

TEST(ValueTest, InferKeepsOriginalStringBytes) {
  // Inference must not trim payload of string values.
  EXPECT_EQ(Value::Infer(" padded ").as_string(), " padded ");
}

TEST(ValueTest, ValueHashFunctorUsableInContainers) {
  std::unordered_map<Value, int, ValueHash> map;
  map[Value("a")] = 1;
  map[Value(2)] = 2;
  map[Value::Null()] = 3;
  EXPECT_EQ(map.at(Value("a")), 1);
  EXPECT_EQ(map.at(Value(2)), 2);
  EXPECT_EQ(map.at(Value::Null()), 3);
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace trex
