#include "table/schema.h"

#include <gtest/gtest.h>

namespace trex {
namespace {

Schema SoccerLike() {
  return Schema({Attribute{"Team", ValueType::kString},
                 Attribute{"Year", ValueType::kInt},
                 Attribute{"Score", ValueType::kDouble}});
}

TEST(SchemaTest, SizeAndAttributeAccess) {
  const Schema s = SoccerLike();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.attribute(0).name, "Team");
  EXPECT_EQ(s.attribute(1).type, ValueType::kInt);
}

TEST(SchemaTest, IndexOfFindsAttributes) {
  const Schema s = SoccerLike();
  EXPECT_EQ(*s.IndexOf("Team"), 0u);
  EXPECT_EQ(*s.IndexOf("Score"), 2u);
  EXPECT_FALSE(s.IndexOf("Nope").ok());
  EXPECT_EQ(s.IndexOf("Nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, IndexOfIsCaseSensitive) {
  const Schema s = SoccerLike();
  EXPECT_FALSE(s.IndexOf("team").ok());
}

TEST(SchemaTest, Contains) {
  const Schema s = SoccerLike();
  EXPECT_TRUE(s.Contains("Year"));
  EXPECT_FALSE(s.Contains("Month"));
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto result = Schema::Make({Attribute{"A", ValueType::kString},
                              Attribute{"A", ValueType::kInt}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, MakeRejectsEmptyNames) {
  auto result = Schema::Make({Attribute{"", ValueType::kString}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, AllStringsConvenience) {
  const Schema s = Schema::AllStrings({"A", "B"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.attribute(0).type, ValueType::kString);
  EXPECT_EQ(s.attribute(1).name, "B");
}

TEST(SchemaTest, EqualityStructural) {
  EXPECT_EQ(SoccerLike(), SoccerLike());
  EXPECT_NE(SoccerLike(), Schema::AllStrings({"Team", "Year", "Score"}));
  EXPECT_EQ(Schema(), Schema());
}

TEST(SchemaTest, ToStringFormat) {
  EXPECT_EQ(SoccerLike().ToString(),
            "(Team:string, Year:int, Score:double)");
  EXPECT_EQ(Schema().ToString(), "()");
}

TEST(SchemaDeathTest, AttributeOutOfRange) {
  EXPECT_DEATH(SoccerLike().attribute(3), "Check failed");
}

TEST(SchemaTest, EmptySchema) {
  const Schema s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains("x"));
}

}  // namespace
}  // namespace trex
