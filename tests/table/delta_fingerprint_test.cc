// Property tests for the XOR-combinable table fingerprints: a delta
// computed from a cached base over a write set must equal the
// from-scratch `Fingerprint`/`StrongFingerprint` of the materialized
// table, for any randomized write set — that identity is what makes
// `BlackBoxRepair::EvalPerturbation` sound without materializing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "table/table.h"

namespace trex {
namespace {

/// A value of random type (null / int / double / string), the full tag
/// space the per-cell hash serializes.
Value RandomValue(Rng* rng) {
  switch (rng->UniformUint64(4)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->UniformInt(-1000, 1000));
    case 2:
      return Value(static_cast<double>(rng->UniformInt(-1000, 1000)) / 8.0);
    default:
      return Value("s" + std::to_string(rng->UniformUint64(50)));
  }
}

Table RandomTable(Rng* rng, std::size_t rows, std::size_t cols) {
  std::vector<Attribute> attributes;
  for (std::size_t c = 0; c < cols; ++c) {
    attributes.push_back(Attribute{"A" + std::to_string(c),
                                   ValueType::kString});
  }
  Table table{Schema(std::move(attributes))};
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (std::size_t c = 0; c < cols; ++c) {
      row.push_back(RandomValue(rng));
    }
    EXPECT_TRUE(table.AppendRow(std::move(row)).ok());
  }
  return table;
}

/// Random write set over pairwise-distinct cells (the DeltaFingerprint
/// precondition); may include writes that re-state the current value
/// ("revert" no-ops).
std::vector<CellWrite> RandomWrites(Rng* rng, const Table& table,
                                    std::size_t count) {
  const std::vector<std::size_t> order =
      rng->Permutation(table.num_cells());
  std::vector<CellWrite> writes;
  for (std::size_t i = 0; i < count && i < order.size(); ++i) {
    const CellRef cell = table.FromLinearIndex(order[i]);
    // One in four writes re-states the current value: the delta must
    // cancel exactly (write-then-revert within one write set).
    const Value value =
        rng->UniformUint64(4) == 0 ? table.at(cell) : RandomValue(rng);
    writes.push_back({cell, value});
  }
  return writes;
}

Table Materialize(const Table& base, const std::vector<CellWrite>& writes) {
  Table out = base;
  for (const CellWrite& write : writes) out.Set(write.cell, write.value);
  return out;
}

TEST(DeltaFingerprintTest, MatchesFromScratchOnRandomizedWriteSets) {
  Rng rng(41);
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t rows = 1 + rng.UniformUint64(8);
    const std::size_t cols = 1 + rng.UniformUint64(5);
    const Table base = RandomTable(&rng, rows, cols);
    std::uint64_t base64 = 0;
    Hash128 base128;
    base.DualFingerprint(&base64, &base128);
    EXPECT_EQ(base64, base.Fingerprint());
    EXPECT_EQ(base128, base.StrongFingerprint());

    const std::vector<CellWrite> writes =
        RandomWrites(&rng, base, rng.UniformUint64(rows * cols + 1));
    std::uint64_t delta64 = 0;
    Hash128 delta128;
    base.DeltaFingerprint(base64, base128, writes, &delta64, &delta128);

    const Table materialized = Materialize(base, writes);
    EXPECT_EQ(delta64, materialized.Fingerprint());
    EXPECT_EQ(delta128, materialized.StrongFingerprint());
    EXPECT_TRUE(materialized.EqualsWithWrites(base, writes));
  }
}

TEST(DeltaFingerprintTest, WriteThenRevertComposesBackToBase) {
  Rng rng(43);
  for (std::size_t round = 0; round < 100; ++round) {
    const Table base = RandomTable(&rng, 6, 4);
    std::uint64_t base64 = 0;
    Hash128 base128;
    base.DualFingerprint(&base64, &base128);

    const std::vector<CellWrite> writes = RandomWrites(&rng, base, 7);
    std::uint64_t fwd64 = 0;
    Hash128 fwd128;
    base.DeltaFingerprint(base64, base128, writes, &fwd64, &fwd128);

    // Revert: from the materialized table, write the base values back.
    const Table materialized = Materialize(base, writes);
    std::vector<CellWrite> reverts;
    for (const CellWrite& write : writes) {
      reverts.push_back({write.cell, base.at(write.cell)});
    }
    std::uint64_t back64 = 0;
    Hash128 back128;
    materialized.DeltaFingerprint(fwd64, fwd128, reverts, &back64, &back128);
    EXPECT_EQ(back64, base64);
    EXPECT_EQ(back128, base128);
  }
}

TEST(DeltaFingerprintTest, NoOpWriteSetIsIdentity) {
  Rng rng(47);
  const Table base = RandomTable(&rng, 5, 3);
  std::uint64_t base64 = 0;
  Hash128 base128;
  base.DualFingerprint(&base64, &base128);
  // Re-stating current values shifts nothing; the empty set neither.
  std::vector<CellWrite> writes = {{CellRef{2, 1}, base.at(CellRef{2, 1})},
                                   {CellRef{0, 0}, base.at(CellRef{0, 0})}};
  std::uint64_t fp64 = 0;
  Hash128 fp128;
  base.DeltaFingerprint(base64, base128, writes, &fp64, &fp128);
  EXPECT_EQ(fp64, base64);
  EXPECT_EQ(fp128, base128);
  base.DeltaFingerprint(base64, base128, {}, &fp64, &fp128);
  EXPECT_EQ(fp64, base64);
  EXPECT_EQ(fp128, base128);
}

TEST(DeltaFingerprintTest, PositionKeyedNotJustValueKeyed) {
  // Swapping two different values between cells must change the
  // fingerprint: per-cell hashes are keyed by (row, col), so the XOR
  // of the swapped pair does not cancel.
  Table table(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(table.AppendRow({Value("x"), Value("y")}).ok());
  Table swapped(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(swapped.AppendRow({Value("y"), Value("x")}).ok());
  EXPECT_NE(table.Fingerprint(), swapped.Fingerprint());
  EXPECT_NE(table.StrongFingerprint(), swapped.StrongFingerprint());
}

TEST(EqualsWithWritesTest, DetectsEveryKindOfMismatch) {
  Table base(Schema::AllStrings({"A", "B"}));
  ASSERT_TRUE(base.AppendRow({Value("a0"), Value("b0")}).ok());
  ASSERT_TRUE(base.AppendRow({Value("a1"), Value("b1")}).ok());
  const std::vector<CellWrite> writes = {{CellRef{0, 1}, Value("patched")}};

  Table good = base;
  good.Set(CellRef{0, 1}, Value("patched"));
  EXPECT_TRUE(good.EqualsWithWrites(base, writes));
  EXPECT_FALSE(good.EqualsWithWrites(base, {}));  // unwritten mismatch
  EXPECT_FALSE(base.EqualsWithWrites(base, writes));  // write not applied

  Table touched_elsewhere = good;
  touched_elsewhere.Set(CellRef{1, 0}, Value("stray"));
  EXPECT_FALSE(touched_elsewhere.EqualsWithWrites(base, writes));

  Table other_schema(Schema::AllStrings({"A", "C"}));
  ASSERT_TRUE(other_schema.AppendRow({Value("a0"), Value("patched")}).ok());
  ASSERT_TRUE(other_schema.AppendRow({Value("a1"), Value("b1")}).ok());
  EXPECT_FALSE(other_schema.EqualsWithWrites(base, writes));
}

TEST(ApproxMemoryBytesTest, GrowsWithContent) {
  Table small(Schema::AllStrings({"A"}));
  ASSERT_TRUE(small.AppendRow({Value("x")}).ok());
  Table big(Schema::AllStrings({"A"}));
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        big.AppendRow({Value(std::string(64, 'x'))}).ok());
  }
  EXPECT_GT(big.ApproxMemoryBytes(), small.ApproxMemoryBytes());
  EXPECT_GT(small.ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace trex
