#!/usr/bin/env python3
"""Demonstration-revert test for tools/trex_check.py.

Proves the checker is load-bearing, not decorative: a pristine copy of
src/ passes, and reverting a protected property — stripping one
[[nodiscard]] from a Status-returning header declaration, re-adding a
float accumulation under unordered iteration, or adding one upward
include — makes the checker fail with the right check name. This is the
regression the CI static-analysis job exists to catch.

Usage: trex_check_mutation_test.py --root <repo root> [--engine ...]
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile


def run_checker(repo_root, tree_root, engine):
    proc = subprocess.run(
        [sys.executable, os.path.join(repo_root, "tools", "trex_check.py"),
         "--root", tree_root, "--engine", engine],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def copy_tree(repo_root, dest):
    shutil.copytree(os.path.join(repo_root, "src"),
                    os.path.join(dest, "src"))


def find_file_with(root, subdir, pattern, suffix=".h"):
    rx = re.compile(pattern)
    base = os.path.join(root, subdir)
    for dirpath, dirnames, names in os.walk(base):
        dirnames.sort()
        for name in sorted(names):
            if not name.endswith(suffix):
                continue
            full = os.path.join(dirpath, name)
            with open(full, encoding="utf-8") as f:
                text = f.read()
            if rx.search(text):
                return full, text
    raise AssertionError(f"no file under {subdir} matches {pattern}")


FLOAT_FOLD_SNIPPET = """
namespace trex {
namespace mutation_test_detail {
inline double UnorderedFoldForMutationTest(
    const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
}  // namespace mutation_test_detail
}  // namespace trex
"""


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", required=True)
    parser.add_argument("--engine", default="auto")
    args = parser.parse_args()
    repo_root = os.path.abspath(args.root)

    failures = []

    def check(label, mutate, expect_check):
        with tempfile.TemporaryDirectory(prefix="trex_mut_") as tmp:
            copy_tree(repo_root, tmp)
            mutate(tmp)
            code, out = run_checker(repo_root, tmp, args.engine)
            if code == 0:
                failures.append(f"{label}: checker passed a mutated tree")
            elif f"[{expect_check}]" not in out:
                failures.append(
                    f"{label}: failed, but not with [{expect_check}]:\n"
                    f"{out[:800]}")
            else:
                print(f"ok: {label} -> [{expect_check}]")

    # Baseline: the pristine tree must be clean, otherwise the mutation
    # outcomes are meaningless.
    with tempfile.TemporaryDirectory(prefix="trex_mut_") as tmp:
        copy_tree(repo_root, tmp)
        code, out = run_checker(repo_root, tmp, args.engine)
        if code != 0:
            print(f"FAIL: pristine src/ is not clean:\n{out}",
                  file=sys.stderr)
            return 1
        print("ok: pristine tree is clean")

    def strip_nodiscard(tmp):
        # Remove the first per-declaration [[nodiscard]] from a header
        # Status/Result declaration (keep the class-level attribute on
        # Status itself out of scope: match only declaration lines).
        decl = (r"\[\[nodiscard\]\] ((?:static )?"
                r"(?:Status|Result<[^;\n]*>)\s+\w+\s*\()")
        full, text = find_file_with(tmp, "src", decl)
        new = re.sub(decl, r"\1", text, count=1)
        assert new != text
        with open(full, "w", encoding="utf-8") as f:
            f.write(new)

    def inject_float_fold(tmp):
        full = os.path.join(tmp, "src", "core", "game.h")
        with open(full, encoding="utf-8") as f:
            text = f.read()
        # Splice the bad fold in before the final include guard #endif.
        idx = text.rindex("#endif")
        text = (text[:idx] + "#include <unordered_map>\n"
                + FLOAT_FOLD_SNIPPET + "\n" + text[idx:])
        with open(full, "w", encoding="utf-8") as f:
            f.write(text)

    def upward_include(tmp):
        full = os.path.join(tmp, "src", "core", "game.h")
        with open(full, encoding="utf-8") as f:
            text = f.read()
        with open(full, "w", encoding="utf-8") as f:
            f.write('#include "serving/service.h"\n' + text)

    def duplicate_fault_site(tmp):
        # Rename the serving layer's injection site to one the repair
        # layer already owns: two code paths would share one schedule
        # and one hit counter.
        full = os.path.join(tmp, "src", "serving", "service.cc")
        with open(full, encoding="utf-8") as f:
            text = f.read()
        new = text.replace('TREX_FAULT_INJECT("serving.execute")',
                           'TREX_FAULT_INJECT("repair.backend")')
        assert new != text
        with open(full, "w", encoding="utf-8") as f:
            f.write(new)

    check("strip one [[nodiscard]]", strip_nodiscard, "status-discipline")
    check("re-add unordered float fold", inject_float_fold,
          "unordered-determinism")
    check("add upward include", upward_include, "layering")
    check("reuse a fault site name across layers", duplicate_fault_site,
          "fault-site-discipline")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("trex_check mutation test: all reverts caught")
    return 0


if __name__ == "__main__":
    sys.exit(main())
