#include "workload/comparison.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace trex::workload {
namespace {

/// One small, shared harness configuration: 80 rows keeps every backend
/// (holoclean included) in unit-test time.
ComparisonOptions SmokeOptions() {
  ComparisonOptions options;
  options.world.num_rows = 80;
  options.world.seed = 301;
  options.errors.seed = 302;
  options.num_targets = 3;
  return options;
}

TEST(RegisteredBackendsTest, TheFourBundledRepairers) {
  const auto backends = RegisteredBackends();
  ASSERT_EQ(backends.size(), 4u);
  EXPECT_EQ(backends[0].name, "fd_repair");
  EXPECT_EQ(backends[1].name, "rule_repair");
  EXPECT_EQ(backends[2].name, "holistic");
  EXPECT_EQ(backends[3].name, "holoclean");
  for (const BackendEntry& entry : backends) {
    ASSERT_NE(entry.algorithm, nullptr) << entry.name;
  }
}

TEST(ComparisonTest, RunsEveryBackendOverTheSharedWorld) {
  auto report = RunComparison(SmokeOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_rows, 80u);
  EXPECT_GT(report->num_errors, 0u);
  EXPECT_EQ(report->num_targets, 3u);
  ASSERT_EQ(report->backends.size(), 4u);
  ASSERT_EQ(report->stability.size(), 4u);
  for (const BackendRun& run : report->backends) {
    EXPECT_TRUE(run.error.empty()) << run.backend << ": " << run.error;
    // Repair quality was scored against ground truth.
    EXPECT_GT(run.quality.true_errors, 0u) << run.backend;
    // Every target got a slot: explained or recorded as unexplainable.
    EXPECT_EQ(run.explanations.size(), report->num_targets) << run.backend;
    EXPECT_EQ(run.explained_targets + run.failed_targets,
              report->num_targets)
        << run.backend;
    // At least the reference repair ran.
    EXPECT_GE(run.algorithm_calls, 1u) << run.backend;
  }
}

TEST(ComparisonTest, ExplanationsRankTheFourConstraints) {
  auto report = RunComparison(SmokeOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool saw_explanation = false;
  for (const BackendRun& run : report->backends) {
    for (const auto& explanation : run.explanations) {
      if (!explanation.has_value()) continue;
      saw_explanation = true;
      // Constraint explanations over the Figure 1 set: 4 players.
      EXPECT_EQ(explanation->ranked.size(), 4u) << run.backend;
    }
  }
  EXPECT_TRUE(saw_explanation);
}

TEST(ComparisonTest, StabilityComparesBackendPairs) {
  auto report = RunComparison(SmokeOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // At least two backends explain shared targets on this world, so the
  // pairwise stability means are populated and bounded.
  std::size_t scored = 0;
  for (const StabilityScore& score : report->stability) {
    if (score.compared == 0) continue;
    ++scored;
    EXPECT_GE(score.mean_kendall_tau, -1.0);
    EXPECT_LE(score.mean_kendall_tau, 1.0);
    EXPECT_GE(score.mean_spearman_rho, -1.0);
    EXPECT_LE(score.mean_spearman_rho, 1.0);
    EXPECT_GE(score.mean_topk_jaccard, 0.0);
    EXPECT_LE(score.mean_topk_jaccard, 1.0);
    EXPECT_GE(score.mean_abs_shift, 0.0);
  }
  EXPECT_GE(scored, 2u);
}

TEST(ComparisonTest, DeterministicForSeed) {
  auto a = RunComparison(SmokeOptions());
  auto b = RunComparison(SmokeOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->backends.size(), b->backends.size());
  for (std::size_t i = 0; i < a->backends.size(); ++i) {
    const BackendRun& ra = a->backends[i];
    const BackendRun& rb = b->backends[i];
    EXPECT_EQ(ra.quality.cells_changed, rb.quality.cells_changed);
    EXPECT_EQ(ra.quality.errors_fixed, rb.quality.errors_fixed);
    EXPECT_EQ(ra.explained_targets, rb.explained_targets);
    ASSERT_EQ(ra.explanations.size(), rb.explanations.size());
    for (std::size_t t = 0; t < ra.explanations.size(); ++t) {
      ASSERT_EQ(ra.explanations[t].has_value(),
                rb.explanations[t].has_value());
      if (!ra.explanations[t].has_value()) continue;
      const auto& ea = ra.explanations[t]->ranked;
      const auto& eb = rb.explanations[t]->ranked;
      ASSERT_EQ(ea.size(), eb.size());
      for (std::size_t p = 0; p < ea.size(); ++p) {
        EXPECT_EQ(ea[p].label, eb[p].label);
        EXPECT_EQ(ea[p].shapley, eb[p].shapley);
      }
    }
    EXPECT_EQ(a->stability[i].compared, b->stability[i].compared);
    EXPECT_EQ(a->stability[i].mean_kendall_tau,
              b->stability[i].mean_kendall_tau);
  }
}

TEST(ComparisonTest, SealedRunIsBitIdenticalAcrossAllBackends) {
  // The sealed-target memo mode (EngineOptions::seal_targets) must be
  // an invisible compaction: every backend's repair quality,
  // explanations, stability metrics, and even its repair-call count
  // match the unsealed run bit for bit — only the resident memo bytes
  // shrink (here at least 5x).
  ComparisonOptions sealed_options = SmokeOptions();
  sealed_options.engine.seal_targets = true;
  auto plain = RunComparison(SmokeOptions());
  auto sealed = RunComparison(sealed_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(sealed.ok());
  ASSERT_EQ(plain->backends.size(), 4u);
  ASSERT_EQ(sealed->backends.size(), 4u);
  for (std::size_t i = 0; i < plain->backends.size(); ++i) {
    const BackendRun& rp = plain->backends[i];
    const BackendRun& rs = sealed->backends[i];
    EXPECT_EQ(rp.backend, rs.backend);
    EXPECT_TRUE(rp.error.empty()) << rp.backend << ": " << rp.error;
    EXPECT_TRUE(rs.error.empty()) << rs.backend << ": " << rs.error;
    EXPECT_EQ(rp.quality.cells_changed, rs.quality.cells_changed)
        << rp.backend;
    EXPECT_EQ(rp.quality.f1, rs.quality.f1) << rp.backend;
    EXPECT_EQ(rp.quality.residual_violations, rs.quality.residual_violations)
        << rp.backend;
    EXPECT_EQ(rp.algorithm_calls, rs.algorithm_calls) << rp.backend;
    EXPECT_EQ(rp.cross_request_hits, rs.cross_request_hits) << rp.backend;
    EXPECT_EQ(rp.explained_targets, rs.explained_targets) << rp.backend;
    ASSERT_EQ(rp.explanations.size(), rs.explanations.size());
    for (std::size_t t = 0; t < rp.explanations.size(); ++t) {
      ASSERT_EQ(rp.explanations[t].has_value(),
                rs.explanations[t].has_value());
      if (!rp.explanations[t].has_value()) continue;
      const auto& ep = rp.explanations[t]->ranked;
      const auto& es = rs.explanations[t]->ranked;
      ASSERT_EQ(ep.size(), es.size());
      for (std::size_t p = 0; p < ep.size(); ++p) {
        EXPECT_EQ(ep[p].label, es[p].label) << rp.backend;
        EXPECT_EQ(ep[p].shapley, es[p].shapley) << rp.backend;
      }
    }
    EXPECT_EQ(plain->stability[i].mean_kendall_tau,
              sealed->stability[i].mean_kendall_tau);
    EXPECT_EQ(plain->stability[i].mean_spearman_rho,
              sealed->stability[i].mean_spearman_rho);
    // The compaction headline: O(targets) bits per entry instead of a
    // resident repaired table.
    EXPECT_GE(rp.approx_memo_bytes, 5 * rs.approx_memo_bytes)
        << rp.backend << ": unsealed=" << rp.approx_memo_bytes
        << " sealed=" << rs.approx_memo_bytes;
  }
}

TEST(ComparisonTest, JsonLinesCarryTheReport) {
  auto report = RunComparison(SmokeOptions());
  ASSERT_TRUE(report.ok());
  for (std::size_t i = 0; i < report->backends.size(); ++i) {
    const std::string line = BackendJsonLine(*report, i);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("\"backend\":\"" + report->backends[i].backend +
                        "\""),
              std::string::npos);
    EXPECT_NE(line.find("\"rows\":80"), std::string::npos);
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(line.find("\"mean_kendall_tau\":"), std::string::npos);
    EXPECT_NE(line.find("\"approx_memo_bytes\":"), std::string::npos);
  }
}

TEST(ComparisonTest, NoInjectedErrorsFailsLoudly) {
  ComparisonOptions options = SmokeOptions();
  options.errors.error_rate = 0.0;
  auto report = RunComparison(options);
  EXPECT_FALSE(report.ok());
}

TEST(ComparisonTest, ZeroTargetsRejected) {
  ComparisonOptions options = SmokeOptions();
  options.num_targets = 0;
  EXPECT_FALSE(RunComparison(options).ok());
}

}  // namespace
}  // namespace trex::workload
