// End-to-end from raw data, no hand-written constraints: discover
// (approximate) functional dependencies on the dirty table itself,
// promote them to denial constraints, repair, and explain — the
// complete T-REx loop bootstrapped from nothing but a CSV-shaped table.
//
//   discover FDs (g1-tolerant, so errors don't mask the real rules)
//     -> detect violations -> repair -> Shapley-explain a repair
//     -> show the constraint-pair interaction indices
//
// Build & run:   ./build/examples/constraint_discovery

#include <cstdio>

#include "serving/report.h"
#include "serving/session.h"
#include "data/errors.h"
#include "data/generator.h"
#include "dc/discovery.h"
#include "dc/violation.h"
#include "repair/fd_repair.h"
#include "repair/metrics.h"

int main() {
  using namespace trex;  // NOLINT

  // Raw input: a league table with a few seeded Country errors; we
  // pretend not to know its rules.
  auto generated = data::GenerateSoccer({.num_rows = 150, .seed = 4242});
  const Schema& schema = generated.clean.schema();
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.02;
  inject.columns = {schema.IndexOf("Country").ValueOrDie()};
  inject.seed = 4243;
  auto injected = data::InjectErrors(generated.clean, inject);
  std::printf("input: %zu rows, %zu seeded errors (unknown to us)\n",
              injected.dirty.num_rows(), injected.injected.size());

  // 1. Discover approximate FDs on the DIRTY table. A small tolerance
  //    lets the true rules surface despite the errors; exact discovery
  //    would reject every rule an error touches.
  dc::FdDiscoveryOptions discovery;
  discovery.max_violation_fraction = 0.10;
  discovery.min_support_pairs = 8;
  auto fds = dc::DiscoverFds(injected.dirty, discovery);
  if (!fds.ok()) return 1;
  std::printf("\ndiscovered %zu approximate FDs (g1 <= %.2f):\n",
              fds->size(), discovery.max_violation_fraction);
  dc::DcSet dcs;
  for (const dc::DiscoveredFd& fd : *fds) {
    std::printf("  %-24s  support=%5zu pairs  g1=%.4f\n",
                fd.constraint.name().c_str(), fd.support_pairs,
                fd.violation_fraction);
    dcs.Add(fd.constraint);
  }
  if (dcs.empty()) {
    std::printf("nothing discovered — raise the tolerance\n");
    return 0;
  }

  // 2. The discovered constraints expose the injected errors.
  const auto violations = dc::FindViolations(injected.dirty, dcs);
  std::printf("\nviolations under the discovered constraints: %zu\n",
              violations.size());

  // 3. Repair with the FD repairer and score against the (held-out)
  //    ground truth.
  TRexSession session(std::make_shared<repair::FdRepair>(), dcs,
                      injected.dirty);
  if (!session.Repair().ok()) return 1;
  auto quality = repair::EvaluateRepair(injected.dirty, session.clean(),
                                        generated.clean, dcs);
  if (quality.ok()) {
    std::printf("repair vs ground truth: %s\n",
                quality->ToString().c_str());
  }
  if (session.repaired_cells().empty()) {
    std::printf("nothing repaired\n");
    return 0;
  }

  // 4. Explain the first repair: which discovered rules drove it, and
  //    which of them act as complements/substitutes.
  const RepairedCell& first = session.repaired_cells().front();
  std::printf("\nexplaining %s\n", first.ToString(schema).c_str());
  auto ex = session.ExplainConstraints(first.cell);
  if (!ex.ok()) {
    std::printf("explain failed: %s\n", ex.status().ToString().c_str());
    return 1;
  }
  ReportOptions report;
  report.top_k = 6;
  std::printf("%s\n", RenderRanking(*ex, report).c_str());

  auto interactions = session.ExplainConstraintInteractions(first.cell);
  if (interactions.ok()) {
    std::printf("top constraint-pair interactions "
                "(+ complement, - substitute):\n");
    std::size_t shown = 0;
    for (const InteractionScore& score : *interactions) {
      if (score.interaction == 0.0 || shown == 5) break;
      std::printf("  I(%s, %s) = %+.4f\n", score.label_a.c_str(),
                  score.label_b.c_str(), score.interaction);
      ++shown;
    }
    if (shown == 0) std::printf("  (all zero — one rule acts alone)\n");
  }
  return 0;
}
