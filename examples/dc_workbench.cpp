// DC workbench: load any CSV table and a text file of denial
// constraints, list violations, repair with a chosen algorithm, and
// explain a chosen cell — a minimal CLI rendition of the T-REx input
// screen (paper Figure 3a).
//
// Usage:
//   dc_workbench                          # runs on the bundled demo data
//   dc_workbench table.csv dcs.txt [tN[Attr]]
//
// The DC file holds one constraint per line, e.g.
//   C1: !(t1.Team == t2.Team & t1.City != t2.City)
// (# comments allowed; ∀/¬/∧/≠ spellings accepted.)

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "serving/report.h"
#include "serving/session.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"
#include "dc/violation.h"
#include "table/csv.h"

namespace {

using namespace trex;  // NOLINT

/// Parses "t5[Country]" into a CellRef (1-based row, named attribute).
Result<CellRef> ParseCellName(const std::string& name,
                              const Schema& schema) {
  const std::size_t bracket = name.find('[');
  if (name.size() < 4 || name[0] != 't' || bracket == std::string::npos ||
      name.back() != ']') {
    return Status::InvalidArgument("expected tN[Attr], got '" + name +
                                   "'");
  }
  TREX_ASSIGN_OR_RETURN(std::int64_t row,
                        ParseInt64(name.substr(1, bracket - 1)));
  if (row < 1) return Status::InvalidArgument("rows are 1-based");
  const std::string attr =
      name.substr(bracket + 1, name.size() - bracket - 2);
  TREX_ASSIGN_OR_RETURN(std::size_t col, schema.IndexOf(attr));
  return CellRef{static_cast<std::size_t>(row - 1), col};
}

int Run(const Table& table, const dc::DcSet& dcs,
        const std::string& cell_name) {
  TablePrinter printer;
  std::printf("input table (%zu rows x %zu columns):\n%s\n",
              table.num_rows(), table.num_columns(),
              printer.Render(table).c_str());

  std::printf("constraints:\n");
  for (const auto& dc : dcs.constraints()) {
    std::printf("  %s: %s\n", dc.name().c_str(),
                dc.ToPrettyString(table.schema()).c_str());
  }

  const auto violations = dc::FindViolations(table, dcs);
  std::printf("\n%zu violation(s):\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.ToString(dcs).c_str());
  }
  if (violations.empty()) {
    std::printf("table is consistent — nothing to repair.\n");
    return 0;
  }

  TRexSession session(repair::MakeAlgorithm1(), dcs, table);
  if (auto status = session.Repair(); !status.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", RenderRepairScreen(session).c_str());

  // Explain the requested cell (or the first repaired one).
  CellRef target{};
  if (!cell_name.empty()) {
    auto parsed = ParseCellName(cell_name, table.schema());
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    target = *parsed;
  } else if (!session.repaired_cells().empty()) {
    target = session.repaired_cells().front().cell;
  } else {
    std::printf("no repaired cells to explain.\n");
    return 0;
  }

  auto ex = session.ExplainConstraints(target);
  if (!ex.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 ex.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", RenderRanking(*ex).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("(no arguments: running on the bundled La Liga demo "
                "data; pass <table.csv> <dcs.txt> [tN[Attr]])\n\n");
    return Run(data::SoccerDirtyTable(), data::SoccerConstraints(),
               "t5[Country]");
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s [table.csv dcs.txt [tN[Attr]]]\n", argv[0]);
    return 2;
  }
  auto table = ReadCsvFile(argv[1]);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::FILE* dc_file = std::fopen(argv[2], "rb");
  if (dc_file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::string dc_text;
  char buffer[4096];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), dc_file)) > 0) {
    dc_text.append(buffer, read);
  }
  std::fclose(dc_file);
  auto dcs = dc::ParseDcSet(dc_text, table->schema());
  if (!dcs.ok()) {
    std::fprintf(stderr, "%s\n", dcs.status().ToString().c_str());
    return 1;
  }
  return Run(*table, *dcs, argc > 3 ? argv[3] : "");
}
