// Cleaning a hospital-quality table with the HoloClean-style repairer
// and explaining its decisions — the paper's actual deployment shape
// (T-REx wrapping HoloClean), on the second domain.
//
//   * generate a consistent hospital table (Zip -> City/State FDs, ...);
//   * inject seeded errors into the geography columns;
//   * repair with `HoloCleanRepair` and score against ground truth;
//   * explain a repaired cell by constraint (exact Shapley; 2^|DCs|
//     repair runs is fine) and estimate one suspect cell's influence
//     with the Example 2.5 single-cell loop (2 runs per sample);
//   * switch the black box to the fast `FdRepair` for a *full* cell
//     ranking — the same explainer code, a different algorithm: the
//     black-box contract in action. Full cell rankings of a heavyweight
//     repairer are possible but cost (#players + 1) repair runs per
//     sample; budget accordingly.
//
// Build & run:   ./build/examples/hospital_cleaning

#include <cstdio>

#include "serving/report.h"
#include "serving/session.h"
#include "data/errors.h"
#include "data/hospital.h"
#include "dc/violation.h"
#include "repair/fd_repair.h"
#include "repair/holoclean.h"
#include "repair/metrics.h"

int main() {
  using namespace trex;  // NOLINT

  auto generated = data::GenerateHospital({.num_rows = 60, .seed = 99});
  const Schema& schema = generated.clean.schema();

  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.03;
  inject.columns = {schema.IndexOf("City").ValueOrDie(),
                    schema.IndexOf("State").ValueOrDie()};
  inject.seed = 100;
  auto injected = data::InjectErrors(generated.clean, inject);

  std::printf("hospital table: %zu rows, %zu injected errors, "
              "%zu violations\n",
              injected.dirty.num_rows(), injected.injected.size(),
              dc::FindViolations(injected.dirty, generated.dcs).size());
  for (const auto& error : injected.injected) {
    std::printf("  injected %s\n", error.ToString(schema).c_str());
  }

  TRexSession session(std::make_shared<repair::HoloCleanRepair>(),
                      generated.dcs, injected.dirty);
  if (!session.Repair().ok()) return 1;

  auto quality = repair::EvaluateRepair(injected.dirty, session.clean(),
                                        generated.clean, generated.dcs);
  if (!quality.ok()) return 1;
  std::printf("\nHoloClean-style repair: %s\n",
              quality->ToString().c_str());

  // Find a correctly repaired cell to explain.
  CellRef target{};
  bool found = false;
  for (const RepairedCell& repaired : session.repaired_cells()) {
    const Value& truth = generated.clean.at(repaired.cell);
    if (!truth.is_null() && repaired.new_value == truth) {
      target = repaired.cell;
      found = true;
      std::printf("\nexplaining %s\n",
                  repaired.ToString(schema).c_str());
      break;
    }
  }
  if (!found) {
    std::printf("no correct repair found to explain — rerun with "
                "another seed\n");
    return 0;
  }

  // (a) Constraint ranking against the HoloClean black box: exact
  //     Shapley, 2^5 + 1 repair runs.
  auto by_dc = session.ExplainConstraints(target);
  if (!by_dc.ok()) return 1;
  std::printf("by constraint (HoloClean black box, exact):\n%s\n",
              RenderRanking(*by_dc).c_str());

  // (b) One suspect cell's influence via the Example 2.5 loop: the
  //     same-zip neighbour's City cell. 2 repair runs per sample.
  const std::size_t zip_col = schema.IndexOf("Zip").ValueOrDie();
  CellRef neighbour{};
  for (std::size_t r = 0; r < injected.dirty.num_rows(); ++r) {
    if (r == target.row) continue;
    const Value& zip = injected.dirty.at(r, zip_col);
    if (!zip.is_null() &&
        zip == injected.dirty.at(target.row, zip_col)) {
      neighbour = CellRef{r, target.col};
      break;
    }
  }
  CellExplainerOptions single;
  single.policy = AbsentCellPolicy::kNull;
  single.num_samples = 25;
  single.seed = 101;
  auto influence = session.ExplainSingleCell(target, neighbour, single);
  if (influence.ok()) {
    std::printf("single-cell estimate (HoloClean black box): "
                "Shap(%s) = %.4f ± %.4f  [%zu samples]\n",
                influence->label.c_str(), influence->shapley,
                influence->std_error, influence->num_samples);
  }

  // (c) Full cell ranking with a cheap black box: identical explainer,
  //     different algorithm.
  TRexSession fd_session(std::make_shared<repair::FdRepair>(),
                         generated.dcs, injected.dirty);
  if (!fd_session.Repair().ok()) return 1;
  CellExplainerOptions ranking;
  ranking.policy = AbsentCellPolicy::kNull;
  ranking.num_samples = 80;
  ranking.seed = 102;
  auto by_cell = fd_session.ExplainCells(target, ranking);
  if (by_cell.ok()) {
    ReportOptions report;
    report.top_k = 8;
    std::printf("\nfull cell ranking (FdRepair black box):\n%s\n",
                RenderRanking(*by_cell, report).c_str());
  } else {
    std::printf("\n(FdRepair did not repair %s: %s)\n",
                target.ToString(schema).c_str(),
                by_cell.status().ToString().c_str());
  }
  return 0;
}
