// The paper's §4 demo scenario as a scripted walkthrough: use Shapley
// explanations to debug (a) a wrong denial constraint and (b) a poisoned
// cell, iterating exactly the way the GUI loop does — repair, explain,
// edit, repair again.
//
// Build & run:   ./build/examples/soccer_debugging

#include <cstdio>

#include "serving/report.h"
#include "serving/session.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/parser.h"
#include "repair/rule_repair.h"
#include "repair/soccer_algorithm1.h"

namespace {

using namespace trex;  // NOLINT

void Banner(const char* text) { std::printf("\n### %s\n\n", text); }

int DebugBadConstraint() {
  Banner("Part 1: a wrong constraint corrupts the repair");

  // A clean synthetic league table...
  auto generated = data::GenerateSoccer({.num_rows = 25, .seed = 2020});
  // ...but the analyst wrote one bad rule: "every city has one team".
  auto bad = dc::ParseDc(
      "OneTeamPerCity: !(t1.City == t2.City & t1.Team != t2.Team)",
      generated.clean.schema());
  if (!bad.ok()) return 1;
  dc::DcSet dcs = generated.dcs;
  dcs.Add(*bad);

  std::vector<repair::RepairRule> rules{
      {"C1", repair::RuleAction::kSetMostCommon, "City", ""},
      {"C2", repair::RuleAction::kSetMostCommonGiven, "Country", "City"},
      {"C3", repair::RuleAction::kSetMostCommon, "Country", ""},
      {"OneTeamPerCity", repair::RuleAction::kSetMostCommonGiven, "Team",
       "City"}};
  auto alg = std::make_shared<repair::RuleRepair>("league-cleaner", rules);

  TRexSession session(alg, dcs, generated.clean);
  if (!session.Repair().ok()) return 1;
  std::printf("the data was CLEAN, yet the repairer changed %zu cells:\n",
              session.repaired_cells().size());
  for (std::size_t i = 0; i < session.repaired_cells().size() && i < 5;
       ++i) {
    std::printf("  %s\n", session.repaired_cells()[i]
                              .ToString(session.dirty().schema())
                              .c_str());
  }

  const CellRef victim = session.repaired_cells().front().cell;
  std::printf("\nexplaining the unwanted repair of %s:\n\n",
              victim.ToString(session.dirty().schema()).c_str());
  auto ex = session.ExplainConstraints(victim);
  if (!ex.ok()) return 1;
  std::printf("%s\n", RenderRanking(*ex).c_str());

  const std::string culprit = ex->ranked.front().label;
  std::printf("-> acting on the explanation: removing '%s'\n",
              culprit.c_str());
  if (!session.RemoveConstraint(culprit).ok()) return 1;
  if (!session.Repair().ok()) return 1;
  std::printf("after re-repair the algorithm changes %zu cells. fixed!\n",
              session.repaired_cells().size());
  return 0;
}

int DebugPoisonedCell() {
  Banner("Part 2: a poisoned cell flips a repair the wrong way");

  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(6, "City"), Value("Capital"));
  std::printf("someone also vandalised t6[City] := 'Capital'...\n");

  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      dirty);
  if (!session.Repair().ok()) return 1;
  std::printf("%s\n", RenderRepairScreen(session).c_str());
  std::printf("t3[City] was 'repaired' to %s — wrong!\n\n",
              session.clean().at(data::SoccerCell(3, "City"))
                  .ToString().c_str());

  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 600;
  auto ex = session.ExplainCells(data::SoccerCell(3, "City"), options);
  if (!ex.ok()) return 1;
  ReportOptions report;
  report.top_k = 6;
  std::printf("which cells drove that bogus repair?\n%s\n",
              RenderRanking(*ex, report).c_str());

  std::printf("-> t6[City] shows up with positive influence; fix it and "
              "re-repair\n");
  if (!session
           .SetDirtyCell(data::SoccerCell(6, "City"), Value("Madrid"))
           .ok()) {
    return 1;
  }
  if (!session.Repair().ok()) return 1;
  std::printf("t3[City] now stays %s; t5[Country] still repairs to %s\n",
              session.clean().at(data::SoccerCell(3, "City"))
                  .ToString().c_str(),
              session.clean().at(data::SoccerTargetCell())
                  .ToString().c_str());
  return 0;
}

}  // namespace

int main() {
  if (int rc = DebugBadConstraint(); rc != 0) return rc;
  if (int rc = DebugPoisonedCell(); rc != 0) return rc;
  return 0;
}
