// Quickstart: the complete T-REx pipeline on the paper's running example
// in ~60 lines of user code.
//
//   1. Load a dirty table and a set of denial constraints.
//   2. Repair it with a black-box repair algorithm.
//   3. Pick a repaired cell and ask *why*:
//        - which constraints drove the repair (exact Shapley values);
//        - which table cells drove the repair (sampled Shapley values).
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "serving/report.h"
#include "serving/session.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

int main() {
  using namespace trex;  // NOLINT — example brevity

  // 1. Inputs: the La Liga table from the paper's Figure 2a, the four
  //    denial constraints from Figure 1, and the paper's "Algorithm 1"
  //    repairer. Any `repair::RepairAlgorithm` works — T-REx only ever
  //    calls Repair(dcs, table).
  TRexSession session(repair::MakeAlgorithm1(), data::SoccerConstraints(),
                      data::SoccerDirtyTable());

  std::printf("constraints:\n");
  for (const auto& dc : session.dcs().constraints()) {
    std::printf("  %s: %s\n", dc.name().c_str(),
                dc.ToPrettyString(session.dirty().schema()).c_str());
  }

  // 2. Repair (the GUI's "Repair" button).
  if (auto status = session.Repair(); !status.ok()) {
    std::fprintf(stderr, "repair failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", RenderRepairScreen(session).c_str());

  // 3. Explain the repair of t5[Country] (the GUI's "Explain" button).
  const CellRef target = session.CellAt(4, "Country").ValueOrDie();

  auto constraint_ex = session.ExplainConstraints(target);
  if (!constraint_ex.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 constraint_ex.status().ToString().c_str());
    return 1;
  }
  std::printf("why was t5[Country] repaired? — by constraint:\n%s\n",
              RenderRanking(*constraint_ex).c_str());

  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;  // the paper's definition
  options.num_samples = 800;
  auto cell_ex = session.ExplainCells(target, options);
  if (!cell_ex.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 cell_ex.status().ToString().c_str());
    return 1;
  }
  ReportOptions report;
  report.top_k = 8;
  std::printf("why was t5[Country] repaired? — by cell:\n%s\n",
              RenderRanking(*cell_ex, report).c_str());
  std::printf("%s\n",
              RenderCellHeatmap(session.dirty(), *cell_ex).c_str());

  // Beyond rankings: complements/substitutes and counterfactuals.
  auto interactions = session.ExplainConstraintInteractions(target);
  if (interactions.ok() && !interactions->empty()) {
    std::printf("strongest constraint interaction: I(%s, %s) = %+.4f "
                "(positive = acts as a pair)\n",
                interactions->front().label_a.c_str(),
                interactions->front().label_b.c_str(),
                interactions->front().interaction);
  }
  ConstraintExplainer cf_explainer;
  auto removal_sets = cf_explainer.ExplainRemovalSets(
      session.algorithm(), session.dcs(), session.dirty(), target);
  if (removal_sets.ok()) {
    std::printf("to stop this repair, remove any of:");
    for (const auto& removal : *removal_sets) {
      std::printf("  {");
      for (std::size_t i = 0; i < removal.size(); ++i) {
        std::printf("%s%s", i ? "," : "", removal[i].c_str());
      }
      std::printf("}");
    }
    std::printf("\n");
  }

  // Batched multi-target explanation: one engine, one reference repair,
  // shared memo caches. Explaining both repaired cells costs one subset
  // sweep instead of two — `cross_request_hits` shows the amortization.
  std::vector<ExplainRequest> requests;
  for (const RepairedCell& repaired : session.repaired_cells()) {
    ExplainRequest request;
    request.target = repaired.cell;
    request.kind = ExplainKind::kConstraints;
    requests.push_back(request);
  }
  auto batch = session.ExplainBatch(requests);
  if (batch.ok()) {
    std::printf(
        "batched explanations over %zu targets: %zu algorithm calls, "
        "%zu cache hits (%zu amortized across targets)\n",
        batch->stats.requests, batch->stats.algorithm_calls,
        batch->stats.cache_hits, batch->stats.cross_request_hits);
  }

  // Machine-readable output for downstream tools.
  std::printf("JSON: %s\n", ExplanationToJson(*constraint_ex).c_str());
  return 0;
}
