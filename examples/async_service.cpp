// Async serving walkthrough: submit, prioritize, cancel, await.
//
// The paper's system is interactive — a user fires an explanation
// query, keeps browsing the repair diff, and may abandon the query
// before it finishes. `serving::ExplainService` is that flow as a
// library: requests are admitted immediately, run on worker threads
// (one engine per (algorithm, constraints, table) instance, many
// tables per service), and every ticket can be awaited or cancelled.
//
// Build & run:   ./build/example_async_service

#include <chrono>
#include <cstdio>
#include <memory>

#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"

int main() {
  using namespace trex;  // NOLINT — example brevity

  // One service for the whole process: 2 workers, up to 4 resident
  // engines (LRU-evicted beyond that).
  serving::ServiceOptions options;
  options.num_workers = 2;
  options.router.max_engines = 4;
  serving::ExplainService service(options);

  const auto algorithm = repair::MakeAlgorithm1();
  const dc::DcSet dcs = data::SoccerConstraints();
  // Tables are shared into the service; reuse one handle per table.
  const auto table = std::make_shared<const Table>(data::SoccerDirtyTable());

  // 1. Submit: an urgent constraint ranking for t5[Country]...
  ExplainRequest constraints_query;
  constraints_query.target = data::SoccerTargetCell();
  constraints_query.kind = ExplainKind::kConstraints;
  serving::RequestOptions urgent;
  urgent.priority = 10;
  urgent.deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(5);
  serving::Ticket ranking = service.Submit(algorithm, dcs, table,
                                           constraints_query, urgent);

  // ...and a slow cell-level sweep at default priority that we will
  // abandon (say the user navigated away).
  ExplainRequest cells_query;
  cells_query.target = data::SoccerTargetCell();
  cells_query.kind = ExplainKind::kCells;
  cells_query.cells.num_samples = 5000;
  serving::Ticket sweep = service.Submit(algorithm, dcs, table, cells_query);

  // 2. Cancel the sweep: queued work never runs, in-flight work stops
  //    at the next black-box evaluation.
  sweep.Cancel();

  // 3. Await the urgent ticket.
  auto ranking_result = ranking.Wait();
  if (!ranking_result.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 ranking_result.status().ToString().c_str());
    return 1;
  }
  std::printf("constraints ranked for %s:\n",
              ranking_result->explanation->target_label.c_str());
  for (const auto& score : ranking_result->explanation->TopK(3)) {
    std::printf("  %-4s %+.4f\n", score.label.c_str(), score.shapley);
  }

  auto sweep_result = sweep.Wait();
  std::printf("abandoned sweep resolved as: %s\n",
              sweep_result.status().ToString().c_str());

  const serving::ServiceStats stats = service.stats();
  std::printf(
      "service lifetime: %zu submitted, %zu completed, %zu cancelled; "
      "%zu engine(s) built\n",
      stats.submitted, stats.completed, stats.cancelled,
      stats.router.misses);
  return 0;
}
