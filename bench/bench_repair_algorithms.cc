// Experiment (added, substrate validation): the repairers T-REx wraps,
// compared on synthetic soccer and hospital data with seeded errors —
// precision / recall / F1 / residual violations / wall clock, across an
// error-rate sweep. The paper treats the repairer as a given; this bench
// documents the behaviour of our substitutes so the explanation
// experiments sit on measured ground.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/hospital.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/violation.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"
#include "repair/metrics.h"

namespace {

using namespace trex;  // NOLINT

struct Workload {
  std::string name;
  Table clean;
  dc::DcSet dcs;
  std::vector<std::size_t> error_columns;
};

void RunWorkload(const Workload& workload) {
  std::vector<std::shared_ptr<repair::RepairAlgorithm>> algorithms;
  algorithms.push_back(repair::MakeAlgorithm1());
  algorithms.push_back(std::make_shared<repair::HoloCleanRepair>());
  algorithms.push_back(std::make_shared<repair::HolisticRepair>());
  algorithms.push_back(std::make_shared<repair::FdRepair>());

  std::printf("\n--- workload: %s (%zu rows) ---\n",
              workload.name.c_str(), workload.clean.num_rows());
  std::printf("%-12s %6s %6s %9s %8s %8s %10s %8s\n", "algorithm",
              "err%", "#err", "precision", "recall", "f1", "resid_viol",
              "sec");

  for (double error_rate : {0.02, 0.05, 0.10}) {
    data::ErrorInjectorOptions inject;
    inject.error_rate = error_rate;
    inject.columns = workload.error_columns;
    inject.seed = 1234;
    auto injected = data::InjectErrors(workload.clean, inject);

    for (const auto& alg : algorithms) {
      Result<Table> repaired = Status::Internal("unset");
      const double seconds = bench::TimeSeconds([&] {
        repaired = alg->Repair(workload.dcs, injected.dirty);
      });
      if (!repaired.ok()) {
        std::printf("%-12s repair failed: %s\n", alg->name().c_str(),
                    repaired.status().ToString().c_str());
        continue;
      }
      auto quality = repair::EvaluateRepair(injected.dirty, *repaired,
                                            workload.clean, workload.dcs);
      if (!quality.ok()) std::exit(1);
      std::printf("%-12s %6.1f %6zu %9.3f %8.3f %8.3f %10zu %8.3f\n",
                  alg->name().c_str(), error_rate * 100,
                  injected.injected.size(), quality->precision,
                  quality->recall, quality->f1,
                  quality->residual_violations, seconds);
    }
  }
}

}  // namespace

int main() {
  bench::Header("repair substrate comparison (added experiment)");

  auto soccer = data::GenerateSoccer({.num_rows = 120, .seed = 31});
  const Schema soccer_schema = soccer.clean.schema();
  RunWorkload(Workload{
      "synthetic soccer",
      soccer.clean,
      soccer.dcs,
      {*soccer_schema.IndexOf("City"), *soccer_schema.IndexOf("Country")}});

  auto hospital = data::GenerateHospital({.num_rows = 150, .seed = 32});
  const Schema hospital_schema = hospital.clean.schema();
  RunWorkload(Workload{"synthetic hospital",
                       hospital.clean,
                       hospital.dcs,
                       {*hospital_schema.IndexOf("City"),
                        *hospital_schema.IndexOf("State"),
                        *hospital_schema.IndexOf("Phone")}});

  bench::Verdict(true, "see rows above; constraint-aware repairers "
                       "should dominate on FD-governed columns");
  return 0;
}
