// Experiment: Figure 1 — Shapley values of the denial constraints for the
// repair of t5[Country] (paper: C1 = 1/6, C2 = 1/6, C3 = 2/3, C4 = 0).
//
// Regenerates the figure with the paper's didactic Algorithm 1 (exact
// reproduction expected) and with the HoloClean-style repairer (the
// black box the demo actually wraps; values depend on the repairer, the
// ranking shape is what matters). Also prints the Example 2.3 subset
// table the figure is derived from.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "serving/report.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "repair/holoclean.h"

namespace {

using namespace trex;  // NOLINT

std::map<std::string, double> Explain(const repair::RepairAlgorithm& alg,
                                      double* seconds,
                                      std::size_t* calls) {
  ConstraintExplainer explainer;
  Result<Explanation> ex = Status::Internal("unset");
  *seconds = bench::TimeSeconds([&] {
    ex = explainer.Explain(alg, data::SoccerConstraints(),
                           data::SoccerDirtyTable(),
                           data::SoccerTargetCell());
  });
  if (!ex.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 ex.status().ToString().c_str());
    std::exit(1);
  }
  *calls = ex->algorithm_calls;
  std::printf("%s", RenderRanking(*ex).c_str());
  std::map<std::string, double> values;
  for (const PlayerScore& p : ex->ranked) values[p.label] = p.shapley;
  return values;
}

}  // namespace

int main() {
  bench::Header("Figure 1: constraint Shapley values for t5[Country]");

  std::printf("\n--- Algorithm 1 (paper's rule repairer) ---\n");
  double seconds = 0;
  std::size_t calls = 0;
  auto alg1 = repair::MakeAlgorithm1();
  const auto values = Explain(*alg1, &seconds, &calls);
  std::printf("wall clock: %.4fs (%zu black-box repair calls)\n", seconds,
              calls);

  std::printf("\npaper vs measured:\n");
  std::printf("  %-4s %10s %10s\n", "DC", "paper", "measured");
  const std::map<std::string, double> paper{
      {"C1", 1.0 / 6.0}, {"C2", 1.0 / 6.0}, {"C3", 2.0 / 3.0}, {"C4", 0.0}};
  bool exact_match = true;
  for (const auto& [name, expected] : paper) {
    std::printf("  %-4s %10.4f %10.4f\n", name.c_str(), expected,
                values.at(name));
    if (std::fabs(values.at(name) - expected) > 1e-9) exact_match = false;
  }
  bench::Verdict(exact_match,
                 "Figure 1 values reproduced exactly (1/6, 1/6, 2/3, 0)");

  // Example 2.3's underlying subset table.
  std::printf("\n--- Example 2.3: Alg|t5[Country](S, T^d) per subset ---\n");
  auto box = BlackBoxRepair::Make(alg1.get(), data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) return 1;
  bool characteristic_ok = true;
  for (std::uint64_t mask = 0; mask < 16; ++mask) {
    std::string members;
    for (int i = 0; i < 4; ++i) {
      if (mask & (1u << i)) {
        if (!members.empty()) members += ",";
        members += "C" + std::to_string(i + 1);
      }
    }
    if (members.empty()) members = "{}";
    const bool outcome = box->EvalConstraintSubset(mask);
    const bool expected = ((mask & 0b11) == 0b11) || (mask & 0b100);
    if (outcome != expected) characteristic_ok = false;
    std::printf("  v({%s}) = %d\n", members.c_str(), outcome ? 1 : 0);
  }
  bench::Verdict(characteristic_ok,
                 "v(S) = 1 iff {C1,C2} ⊆ S or C3 ∈ S (Example 2.3)");

  // Pairwise interaction indices — the quantitative form of Example
  // 2.3's "contribution of C1 and C2, as a pair" discussion.
  std::printf("\n--- constraint-pair Shapley interactions ---\n");
  ConstraintExplainer interaction_explainer;
  auto interactions = interaction_explainer.ExplainInteractions(
      *alg1, data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell());
  if (!interactions.ok()) return 1;
  double i_c1c2 = 0;
  double i_c1c3 = 0;
  for (const InteractionScore& score : *interactions) {
    std::printf("  I(%s, %s) = %+ .4f\n", score.label_a.c_str(),
                score.label_b.c_str(), score.interaction);
    if (score.label_a == "C1" && score.label_b == "C2") {
      i_c1c2 = score.interaction;
    }
    if (score.label_a == "C1" && score.label_b == "C3") {
      i_c1c3 = score.interaction;
    }
  }
  bench::Verdict(i_c1c2 > 0 && i_c1c3 < 0,
                 "C1,C2 are complements (the paper's 'pair'); C3 "
                 "substitutes for them");

  // Counterfactual reading: what must be removed to stop the repair.
  std::printf("\n--- minimal removal sets (counterfactual view) ---\n");
  auto removal_sets = interaction_explainer.ExplainRemovalSets(
      *alg1, data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell());
  if (!removal_sets.ok()) return 1;
  for (const auto& removal : *removal_sets) {
    std::string joined;
    for (const std::string& name : removal) {
      if (!joined.empty()) joined += ", ";
      joined += name;
    }
    std::printf("  remove {%s} -> t5[Country] stays España\n",
                joined.c_str());
  }
  bench::Verdict(
      removal_sets->size() == 2,
      "two minimal removal sets ({C1,C3}, {C2,C3}): C3 must go along "
      "with either half of the C1-C2 pipeline");

  // Banzhaf values for comparison (equal coalition weighting).
  std::printf("\n--- Banzhaf values (comparison attribution) ---\n");
  ConstraintExplainerOptions banzhaf_options;
  banzhaf_options.use_banzhaf = true;
  ConstraintExplainer banzhaf_explainer(banzhaf_options);
  auto banzhaf = banzhaf_explainer.Explain(
      *alg1, data::SoccerConstraints(), data::SoccerDirtyTable(),
      data::SoccerTargetCell());
  if (!banzhaf.ok()) return 1;
  std::printf("%s", RenderRanking(*banzhaf).c_str());
  bench::Verdict(banzhaf->ranked[0].label == "C3",
                 "Banzhaf agrees on the ranking (values differ: 3/4 vs "
                 "2/3 for C3 — no efficiency axiom)");

  // The same explanation against the HoloClean-style black box.
  std::printf("\n--- HoloClean-style repairer (the demo's black box) ---\n");
  repair::HoloCleanRepair holoclean;
  const auto hc_values = Explain(holoclean, &seconds, &calls);
  std::printf("wall clock: %.4fs (%zu black-box repair calls)\n", seconds,
              calls);
  bench::Verdict(hc_values.at("C4") <= hc_values.at("C3"),
                 "C3 outranks the irrelevant C4 under HoloClean too");
  return 0;
}
