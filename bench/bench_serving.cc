// The async serving layer under mixed-table load: overlap, cancellation,
// and service-vs-sync bit-identity.
//
// Three claims of the PR 2 serving redesign, each with a verdict:
//  1. One `ExplainService` overlaps requests across tables: the
//     wall-clock for N requests spread over several tables is below the
//     serial sum of per-table runs (per-engine work is serialized, so
//     the win comes from cross-table concurrency). The primary
//     demonstration pads each black-box repair call with a small fixed
//     latency — modelling remote / I/O-bound repair backends — so the
//     overlap is measurable regardless of host core count; on
//     multi-core hosts a pure-compute comparison is also scored.
//  2. Cooperative cancellation stops an in-flight sweep early: the
//     black-box call count of a cancelled request is a fraction of the
//     uncancelled run's.
//  3. Results through the service are bit-identical to synchronous
//     `Engine::Explain` with the same seeds — asynchrony never changes
//     values, only latency.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/engine.h"
#include "data/soccer.h"
#include "serving/service.h"

namespace trex {
namespace {

/// Distinct single-error variants of the soccer table: each routes to
/// its own engine (different content fingerprint), same constraint set.
std::vector<std::shared_ptr<const Table>> VariantTables(std::size_t count) {
  std::vector<std::shared_ptr<const Table>> tables;
  const Table base = data::SoccerDirtyTable();
  for (std::size_t i = 0; i < count; ++i) {
    Table dirty = base;
    dirty.Set(CellRef{i % dirty.num_rows(), 0},
              Value("variant-" + std::to_string(i)));
    tables.push_back(std::make_shared<const Table>(dirty));
  }
  return tables;
}

ExplainRequest SampledCellsRequest(std::size_t num_samples,
                                   std::uint64_t seed) {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kSampleFromColumn;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = num_samples;
  request.cells.seed = seed;
  return request;
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

/// Pass-through repairer padding every call with a fixed latency: a
/// stand-in for repair backends that do I/O (remote services, on-disk
/// state). Threads sleeping in the backend overlap even on one core.
class PaddedAlgorithm : public repair::RepairAlgorithm {
 public:
  PaddedAlgorithm(std::shared_ptr<const repair::RepairAlgorithm> inner,
                  std::chrono::microseconds pad)
      : inner_(std::move(inner)), pad_(pad) {}

  std::string name() const override {
    return "padded(" + inner_->name() + ")";
  }

  Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override {
    std::this_thread::sleep_for(pad_);
    return inner_->Repair(dcs, dirty);
  }

 private:
  std::shared_ptr<const repair::RepairAlgorithm> inner_;
  std::chrono::microseconds pad_;
};

/// Pass-through repairer that counts calls and flips a cancel source
/// after a budget — deterministic mid-sweep cancellation.
class CancelAfterAlgorithm : public repair::RepairAlgorithm {
 public:
  CancelAfterAlgorithm(std::shared_ptr<const repair::RepairAlgorithm> inner,
                       std::size_t cancel_after)
      : inner_(std::move(inner)), cancel_after_(cancel_after) {}

  std::string name() const override {
    return "cancel-after(" + inner_->name() + ")";
  }

  Result<Table> Repair(const dc::DcSet& dcs,
                       const Table& dirty) const override {
    if (calls_.fetch_add(1) + 1 >= cancel_after_ && cancel_after_ > 0) {
      source_.Cancel();
    }
    return inner_->Repair(dcs, dirty);
  }

  std::size_t calls() const { return calls_.load(); }
  CancelToken token() const { return source_.token(); }

 private:
  std::shared_ptr<const repair::RepairAlgorithm> inner_;
  std::size_t cancel_after_;
  mutable std::atomic<std::size_t> calls_{0};
  mutable CancelSource source_;
};

void Run() {
  const auto algorithm = data::MakeAlgorithm1();
  const dc::DcSet dcs = data::SoccerConstraints();
  constexpr std::size_t kTables = 4;
  constexpr std::size_t kRequestsPerTable = 2;
  constexpr std::size_t kSamples = 256;
  const auto tables = VariantTables(kTables);

  bench::Header("mixed-table load: serial engines vs ExplainService");
  // Primary comparison: a latency-padded backend (1ms per repair call),
  // so cross-table overlap shows on any host.
  const auto padded = std::make_shared<PaddedAlgorithm>(
      algorithm, std::chrono::microseconds(1000));
  const double serial_seconds = bench::TimeSeconds([&] {
    for (const auto& table : tables) {
      Engine engine(padded, dcs, table);
      for (std::size_t r = 0; r < kRequestsPerTable; ++r) {
        auto result = engine.Explain(ConstraintRequest());
        TREX_CHECK(result.ok()) << result.status().ToString();
      }
    }
  });

  // Service: same requests interleaved across tables, four workers.
  serving::ServiceOptions service_options;
  service_options.num_workers = 4;
  serving::ServiceStats stats;
  const double service_seconds = bench::TimeSeconds([&] {
    serving::ExplainService service(service_options);
    std::vector<serving::Ticket> tickets;
    for (std::size_t r = 0; r < kRequestsPerTable; ++r) {
      for (const auto& table : tables) {
        tickets.push_back(
            service.Submit(padded, dcs, table, ConstraintRequest()));
      }
    }
    for (serving::Ticket& ticket : tickets) {
      auto result = ticket.Wait();
      TREX_CHECK(result.ok()) << result.status().ToString();
    }
    stats = service.stats();
  });
  std::printf(
      "%zu requests over %zu tables, 1ms-latency backend\n"
      "serial: %.3fs   service(4 workers): %.3fs   speedup: %.2fx\n"
      "router: %zu engines built, %zu hits, %zu evictions\n",
      kTables * kRequestsPerTable, kTables, serial_seconds, service_seconds,
      service_seconds > 0 ? serial_seconds / service_seconds : 0.0,
      stats.router.misses, stats.router.hits, stats.router.evictions);
  bench::Verdict(service_seconds < serial_seconds,
                 "service overlaps mixed-table requests below the serial sum");
  bench::Verdict(stats.router.misses == kTables,
                 "one engine per table, reused across requests");

  // Pure-compute comparison: only meaningful with real parallel cores.
  if (std::thread::hardware_concurrency() > 1) {
    const double cpu_serial = bench::TimeSeconds([&] {
      for (const auto& table : tables) {
        Engine engine(algorithm, dcs, table);
        auto result = engine.Explain(SampledCellsRequest(kSamples, 100));
        TREX_CHECK(result.ok()) << result.status().ToString();
      }
    });
    const double cpu_service = bench::TimeSeconds([&] {
      serving::ExplainService service(service_options);
      std::vector<serving::Ticket> tickets;
      for (const auto& table : tables) {
        tickets.push_back(service.Submit(algorithm, dcs, table,
                                         SampledCellsRequest(kSamples, 100)));
      }
      for (serving::Ticket& ticket : tickets) {
        TREX_CHECK(ticket.Wait().ok());
      }
    });
    std::printf("compute-bound: serial %.3fs, service %.3fs (%.2fx)\n",
                cpu_serial, cpu_service,
                cpu_service > 0 ? cpu_serial / cpu_service : 0.0);
    bench::Verdict(cpu_service < cpu_serial,
                   "compute-bound mixed-table load also overlaps");
  } else {
    std::printf(
        "compute-bound comparison skipped: single-core host (no parallel "
        "speedup possible)\n");
  }

  bench::Header("cooperative cancellation of an in-flight sweep");
  std::size_t uncancelled_calls = 0;
  {
    Engine engine(algorithm, dcs, tables[0]);
    auto result = engine.Explain(SampledCellsRequest(kSamples, 7));
    TREX_CHECK(result.ok()) << result.status().ToString();
    uncancelled_calls = engine.num_algorithm_calls();
  }
  auto cancelling =
      std::make_shared<CancelAfterAlgorithm>(algorithm, /*cancel_after=*/40);
  std::size_t cancelled_calls = 0;
  {
    serving::ExplainService service;
    serving::RequestOptions options;
    options.cancel = cancelling->token();
    serving::Ticket ticket = service.Submit(
        cancelling, dcs, tables[0], SampledCellsRequest(kSamples, 7), options);
    auto result = ticket.Wait();
    TREX_CHECK(!result.ok());
    TREX_CHECK(result.status().IsCancelled()) << result.status().ToString();
    cancelled_calls = cancelling->calls();
  }
  std::printf("uncancelled: %zu algorithm calls\ncancelled:   %zu calls\n",
              uncancelled_calls, cancelled_calls);
  bench::Verdict(cancelled_calls * 2 < uncancelled_calls,
                 "cancellation stops the sweep well before the full budget");

  bench::Header("service path vs synchronous Explain: bit-identity");
  Engine sync_engine(algorithm, dcs, tables[1]);
  auto sync_result = sync_engine.Explain(SampledCellsRequest(kSamples, 13));
  TREX_CHECK(sync_result.ok()) << sync_result.status().ToString();
  serving::ExplainService service;
  auto service_result = service.ExplainSync(
      algorithm, dcs, tables[1], SampledCellsRequest(kSamples, 13));
  TREX_CHECK(service_result.ok()) << service_result.status().ToString();
  const Explanation& a = *sync_result->explanation;
  const Explanation& b = *service_result->explanation;
  bool identical = a.ranked.size() == b.ranked.size();
  for (std::size_t i = 0; identical && i < a.ranked.size(); ++i) {
    identical = a.ranked[i].label == b.ranked[i].label &&
                a.ranked[i].shapley == b.ranked[i].shapley &&
                a.ranked[i].std_error == b.ranked[i].std_error;
  }
  bench::Verdict(identical,
                 "service results are bit-identical to synchronous Explain");
}

}  // namespace
}  // namespace trex

int main() {
  trex::Run();
  return 0;
}
