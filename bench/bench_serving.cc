// The async serving layer under load: overlap, cancellation,
// service-vs-sync bit-identity, the admit → coalesce → execute
// scheduler (queue cap + load-shedding under oversubmission, and the
// repair-call reduction from coalescing same-engine requests), and a
// synthetic mixed-table world (data/generator.h) served through one
// `ExplainService`. The scheduler and synthetic-world scenarios emit one
// JSON line each (prefixed "JSON ") so the bench trajectory is
// machine-readable.
//
// Three claims of the PR 2 serving redesign, each with a verdict:
//  1. One `ExplainService` overlaps requests across tables: the
//     wall-clock for N requests spread over several tables is below the
//     serial sum of per-table runs (per-engine work is serialized, so
//     the win comes from cross-table concurrency). The primary
//     demonstration pads each black-box repair call with a small fixed
//     latency — modelling remote / I/O-bound repair backends — so the
//     overlap is measurable regardless of host core count; on
//     multi-core hosts a pure-compute comparison is also scored.
//  2. Cooperative cancellation stops an in-flight sweep early: the
//     black-box call count of a cancelled request is a fraction of the
//     uncancelled run's.
//  3. Results through the service are bit-identical to synchronous
//     `Engine::Explain` with the same seeds — asynchrony never changes
//     values, only latency.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/engine.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "repair/faulty.h"
#include "repair/soccer_algorithm1.h"
#include "serving/service.h"
#include "tests/serving/algorithm_fixtures.h"

namespace trex {
namespace {

using trex::testing::CancelAfterAlgorithm;
using trex::testing::GatedAlgorithm;
using trex::testing::InstrumentedAlgorithm;

/// Distinct single-error variants of the soccer table: each routes to
/// its own engine (different content fingerprint), same constraint set.
std::vector<std::shared_ptr<const Table>> VariantTables(std::size_t count) {
  std::vector<std::shared_ptr<const Table>> tables;
  const Table base = data::SoccerDirtyTable();
  for (std::size_t i = 0; i < count; ++i) {
    Table dirty = base;
    dirty.Set(CellRef{i % dirty.num_rows(), 0},
              Value("variant-" + std::to_string(i)));
    tables.push_back(std::make_shared<const Table>(dirty));
  }
  return tables;
}

ExplainRequest SampledCellsRequest(std::size_t num_samples,
                                   std::uint64_t seed) {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kSampleFromColumn;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = num_samples;
  request.cells.seed = seed;
  return request;
}

ExplainRequest ConstraintRequest() {
  ExplainRequest request;
  request.target = data::SoccerTargetCell();
  request.kind = ExplainKind::kConstraints;
  return request;
}

void Run() {
  const auto algorithm = repair::MakeAlgorithm1();
  const dc::DcSet dcs = data::SoccerConstraints();
  constexpr std::size_t kTables = 4;
  constexpr std::size_t kRequestsPerTable = 2;
  constexpr std::size_t kSamples = 256;
  const auto tables = VariantTables(kTables);

  bench::Header("mixed-table load: serial engines vs ExplainService");
  // Primary comparison: a latency-padded backend (1ms per repair call,
  // modelling remote / I/O-bound repairers), so cross-table overlap
  // shows on any host.
  const auto padded = std::make_shared<InstrumentedAlgorithm>(
      "padded", algorithm, std::chrono::microseconds(1000));
  const double serial_seconds = bench::TimeSeconds([&] {
    for (const auto& table : tables) {
      Engine engine(padded, dcs, table);
      for (std::size_t r = 0; r < kRequestsPerTable; ++r) {
        auto result = engine.Explain(ConstraintRequest());
        TREX_CHECK(result.ok()) << result.status().ToString();
      }
    }
  });

  // Service: same requests interleaved across tables, four workers.
  serving::ServiceOptions service_options;
  service_options.num_workers = 4;
  serving::ServiceStats stats;
  const double service_seconds = bench::TimeSeconds([&] {
    serving::ExplainService service(service_options);
    std::vector<serving::Ticket> tickets;
    for (std::size_t r = 0; r < kRequestsPerTable; ++r) {
      for (const auto& table : tables) {
        tickets.push_back(
            service.Submit(padded, dcs, table, ConstraintRequest()));
      }
    }
    for (serving::Ticket& ticket : tickets) {
      auto result = ticket.Wait();
      TREX_CHECK(result.ok()) << result.status().ToString();
    }
    stats = service.stats();
  });
  std::printf(
      "%zu requests over %zu tables, 1ms-latency backend\n"
      "serial: %.3fs   service(4 workers): %.3fs   speedup: %.2fx\n"
      "router: %zu engines built, %zu hits, %zu evictions\n",
      kTables * kRequestsPerTable, kTables, serial_seconds, service_seconds,
      service_seconds > 0 ? serial_seconds / service_seconds : 0.0,
      stats.router.misses, stats.router.hits, stats.router.evictions);
  bench::Verdict(service_seconds < serial_seconds,
                 "service overlaps mixed-table requests below the serial sum");
  bench::Verdict(stats.router.misses == kTables,
                 "one engine per table, reused across requests");

  // Pure-compute comparison: only meaningful with real parallel cores.
  if (std::thread::hardware_concurrency() > 1) {
    const double cpu_serial = bench::TimeSeconds([&] {
      for (const auto& table : tables) {
        Engine engine(algorithm, dcs, table);
        auto result = engine.Explain(SampledCellsRequest(kSamples, 100));
        TREX_CHECK(result.ok()) << result.status().ToString();
      }
    });
    const double cpu_service = bench::TimeSeconds([&] {
      serving::ExplainService service(service_options);
      std::vector<serving::Ticket> tickets;
      for (const auto& table : tables) {
        tickets.push_back(service.Submit(algorithm, dcs, table,
                                         SampledCellsRequest(kSamples, 100)));
      }
      for (serving::Ticket& ticket : tickets) {
        TREX_CHECK(ticket.Wait().ok());
      }
    });
    std::printf("compute-bound: serial %.3fs, service %.3fs (%.2fx)\n",
                cpu_serial, cpu_service,
                cpu_service > 0 ? cpu_serial / cpu_service : 0.0);
    bench::Verdict(cpu_service < cpu_serial,
                   "compute-bound mixed-table load also overlaps");
  } else {
    std::printf(
        "compute-bound comparison skipped: single-core host (no parallel "
        "speedup possible)\n");
  }

  bench::Header("cooperative cancellation of an in-flight sweep");
  std::size_t uncancelled_calls = 0;
  {
    Engine engine(algorithm, dcs, tables[0]);
    auto result = engine.Explain(SampledCellsRequest(kSamples, 7));
    TREX_CHECK(result.ok()) << result.status().ToString();
    uncancelled_calls = engine.num_algorithm_calls();
  }
  auto cancelling =
      std::make_shared<CancelAfterAlgorithm>(algorithm, /*cancel_after=*/40);
  std::size_t cancelled_calls = 0;
  {
    serving::ExplainService service;
    serving::RequestOptions options;
    options.cancel = cancelling->token();
    serving::Ticket ticket = service.Submit(
        cancelling, dcs, tables[0], SampledCellsRequest(kSamples, 7), options);
    auto result = ticket.Wait();
    TREX_CHECK(!result.ok());
    TREX_CHECK(result.status().IsCancelled()) << result.status().ToString();
    cancelled_calls = cancelling->calls();
  }
  std::printf("uncancelled: %zu algorithm calls\ncancelled:   %zu calls\n",
              uncancelled_calls, cancelled_calls);
  bench::Verdict(cancelled_calls * 2 < uncancelled_calls,
                 "cancellation stops the sweep well before the full budget");

  bench::Header("service path vs synchronous Explain: bit-identity");
  Engine sync_engine(algorithm, dcs, tables[1]);
  auto sync_result = sync_engine.Explain(SampledCellsRequest(kSamples, 13));
  TREX_CHECK(sync_result.ok()) << sync_result.status().ToString();
  serving::ExplainService service;
  auto service_result = service.ExplainSync(
      algorithm, dcs, tables[1], SampledCellsRequest(kSamples, 13));
  TREX_CHECK(service_result.ok()) << service_result.status().ToString();
  const Explanation& a = *sync_result->explanation;
  const Explanation& b = *service_result->explanation;
  bool identical = a.ranked.size() == b.ranked.size();
  for (std::size_t i = 0; identical && i < a.ranked.size(); ++i) {
    identical = a.ranked[i].label == b.ranked[i].label &&
                a.ranked[i].shapley == b.ranked[i].shapley &&
                a.ranked[i].std_error == b.ranked[i].std_error;
  }
  bench::Verdict(identical,
                 "service results are bit-identical to synchronous Explain");
}

/// Scheduler scenario 1 — coalescing: 8 concurrent single-target
/// requests against one (table, DcSet), interleaved with equal traffic
/// for a second stream on a router capped at one resident engine (the
/// steady state of a loaded deployment: another stream's jobs evict
/// yours between your jobs). Per-job execution rebuilds the engine —
/// reference repair plus a fresh 2^|C| memo — for every request;
/// coalescing gathers each stream back into one `ExplainBatch`.
void RunCoalescingScenario() {
  bench::Header("scheduler: coalesced vs per-job execution under pressure");
  const dc::DcSet dcs = data::SoccerConstraints();
  const auto inner = repair::MakeAlgorithm1();
  const auto tables = VariantTables(2);
  constexpr std::size_t kRequests = 8;

  struct Outcome {
    std::size_t calls_a = 0;
    serving::ServiceStats stats;
  };
  auto run = [&](std::size_t max_coalesced) {
    auto count_a = std::make_shared<InstrumentedAlgorithm>("count-a", inner);
    auto count_b = std::make_shared<InstrumentedAlgorithm>("count-b", inner);
    auto gated = std::make_shared<GatedAlgorithm>(inner);
    serving::ServiceOptions options;
    options.num_workers = 1;
    options.max_coalesced_requests = max_coalesced;
    options.router.max_engines = 1;
    serving::ExplainService service(options);
    // Pin the worker so the full backlog queues before any dequeue.
    serving::Ticket blocker =
        service.Submit(gated, dcs, tables[1], ConstraintRequest());
    gated->WaitUntilStarted();
    std::vector<serving::Ticket> tickets;
    for (std::size_t i = 0; i < kRequests; ++i) {
      tickets.push_back(
          service.Submit(count_a, dcs, tables[0], ConstraintRequest()));
      tickets.push_back(
          service.Submit(count_b, dcs, tables[1], ConstraintRequest()));
    }
    gated->Release();
    TREX_CHECK(blocker.Wait().ok());
    for (serving::Ticket& ticket : tickets) {
      TREX_CHECK(ticket.Wait().ok());
    }
    return Outcome{count_a->calls(), service.stats()};
  };

  const Outcome per_job = run(1);
  const Outcome coalesced = run(kRequests);
  const double reduction =
      coalesced.calls_a > 0
          ? static_cast<double>(per_job.calls_a) /
                static_cast<double>(coalesced.calls_a)
          : 0.0;
  std::printf(
      "%zu single-target requests on one (table, DcSet), interleaved "
      "with a second stream, 1-engine router\n"
      "per-job:   %zu repair calls for the stream\n"
      "coalesced: %zu repair calls (%zu batches, %zu jobs coalesced)\n"
      "reduction: %.2fx\n",
      kRequests, per_job.calls_a, coalesced.calls_a,
      coalesced.stats.coalesced_batches, coalesced.stats.coalesced_jobs,
      reduction);
  std::printf(
      "JSON {\"bench\":\"serving\",\"scenario\":\"coalescing\","
      "\"requests\":%zu,\"per_job_calls\":%zu,\"coalesced_calls\":%zu,"
      "\"reduction\":%.2f,\"coalesced_batches\":%zu,"
      "\"coalesced_jobs\":%zu}\n",
      kRequests, per_job.calls_a, coalesced.calls_a, reduction,
      coalesced.stats.coalesced_batches, coalesced.stats.coalesced_jobs);
  bench::Verdict(coalesced.calls_a * 2 <= per_job.calls_a,
                 "coalescing cuts the stream's repair calls >= 2x vs "
                 "per-job execution");
  bench::Verdict(per_job.stats.coalesced_batches == 0,
                 "max_coalesced_requests = 1 reproduces per-job behavior");
}

/// Scheduler scenario 2 — saturation: 4x oversubmission against a
/// capped queue. Shedding must keep exactly the best of everything
/// submitted (highest priority, oldest within a priority) and resolve
/// the rest `Rejected` at admission.
void RunSaturationScenario() {
  bench::Header("scheduler: queue cap + shedding under 4x oversubmission");
  const dc::DcSet dcs = data::SoccerConstraints();
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table = std::make_shared<const Table>(data::SoccerDirtyTable());
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kSubmitted = 4 * kCap;

  auto gated = std::make_shared<GatedAlgorithm>(algorithm);
  serving::ServiceOptions options;
  options.num_workers = 1;
  options.max_queued_jobs = kCap;
  serving::ExplainService service(options);
  serving::Ticket blocker =
      service.Submit(gated, dcs, table, ConstraintRequest());
  gated->WaitUntilStarted();

  std::vector<std::pair<int, serving::Ticket>> tickets;
  const double submit_seconds = bench::TimeSeconds([&] {
    for (std::size_t i = 0; i < kSubmitted; ++i) {
      serving::RequestOptions request_options;
      request_options.priority = static_cast<int>(i % 8);
      tickets.emplace_back(
          request_options.priority,
          service.Submit(algorithm, dcs, table, ConstraintRequest(),
                         request_options));
    }
  });
  gated->Release();
  TREX_CHECK(blocker.Wait().ok());

  // Priorities cycle 0..7 over 32 submissions; the best 8 of the run
  // are the four 7s and four 6s, and shedding must keep exactly those.
  std::size_t completed = 0;
  std::size_t rejected = 0;
  bool survivors_are_best = true;
  for (auto& [priority, ticket] : tickets) {
    auto result = ticket.Wait();
    if (result.ok()) {
      ++completed;
      if (priority < 6) survivors_are_best = false;
    } else {
      TREX_CHECK(result.status().IsRejected())
          << result.status().ToString();
      ++rejected;
      if (priority >= 6) survivors_are_best = false;
    }
  }
  const serving::ServiceStats stats = service.stats();
  std::printf(
      "%zu submissions against a %zu-deep queue (worker pinned): "
      "%zu served, %zu shed (%.0f%%), high-water %zu, "
      "admission wall-clock %.1fus/job\n",
      kSubmitted, kCap, completed, rejected,
      100.0 * static_cast<double>(rejected) /
          static_cast<double>(kSubmitted),
      stats.queue_high_water,
      1e6 * submit_seconds / static_cast<double>(kSubmitted));
  std::printf(
      "JSON {\"bench\":\"serving\",\"scenario\":\"saturation\","
      "\"submitted\":%zu,\"queue_cap\":%zu,\"completed\":%zu,"
      "\"shed\":%zu,\"queue_high_water\":%zu,"
      "\"admission_us_per_job\":%.1f}\n",
      kSubmitted, kCap, completed, stats.shed, stats.queue_high_water,
      1e6 * submit_seconds / static_cast<double>(kSubmitted));
  bench::Verdict(completed == kCap && rejected == kSubmitted - kCap &&
                     stats.shed == kSubmitted - kCap,
                 "a full queue sheds exactly the oversubmission");
  bench::Verdict(survivors_are_best,
                 "shedding keeps the highest-priority jobs, rejects the "
                 "rest at admission");
  bench::Verdict(stats.queue_high_water == kCap,
                 "queue depth never exceeds the admission cap");
}

/// Scheduler scenario 3 — synthetic mixed-table world: a generated
/// multi-table world (disjoint seeds, injected ground-truth errors)
/// served through one `ExplainService`. Constraint explanations of the
/// injected error cells for every table are submitted interleaved, so
/// the router must keep one engine per table while the workers overlap
/// the streams — the serving-layer counterpart of bench_scalability's
/// cross-backend sweep.
void RunSyntheticWorldScenario() {
  bench::Header("synthetic mixed-table world through ExplainService");
  constexpr std::size_t kRowsPerTable = 160;
  constexpr std::size_t kTargetsPerTable = 3;

  data::WorldGenOptions world_options;
  world_options.table.num_rows = kRowsPerTable;
  world_options.table.seed = 61;
  world_options.num_tables = 3;
  const data::GeneratedWorld world = data::GenerateWorld(world_options);
  const dc::DcSet dcs = world.tables[0].dcs;
  const Schema schema = world.tables[0].clean.schema();
  const auto algorithm = repair::MakeAlgorithm1();

  // Dirty each table with swaps in the FD-repairable columns and keep
  // the first injected error cells as explanation targets.
  std::vector<std::shared_ptr<const Table>> tables;
  std::vector<std::vector<CellRef>> targets(world.tables.size());
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < world.tables.size(); ++i) {
    data::ErrorInjectorOptions inject;
    inject.error_rate = 0.06;
    inject.weight_swap = 1.0;
    inject.weight_typo = 0.0;
    inject.weight_missing = 0.0;
    inject.columns = {*schema.IndexOf("City"), *schema.IndexOf("Country")};
    inject.seed = 62 + i;
    auto injected = data::InjectErrors(world.tables[i].clean, inject);
    TREX_CHECK(!injected.injected.empty());
    for (const RepairedCell& error : injected.injected) {
      if (targets[i].size() >= kTargetsPerTable) break;
      targets[i].push_back(error.cell);
    }
    tables.push_back(std::make_shared<const Table>(std::move(injected.dirty)));
  }

  serving::ServiceOptions options;
  options.num_workers = 3;
  std::size_t explained = 0;
  std::size_t unexplained = 0;
  std::vector<std::size_t> explained_per_table(tables.size(), 0);
  serving::ServiceStats stats;
  const double wall_seconds = bench::TimeSeconds([&] {
    serving::ExplainService service(options);
    std::vector<std::pair<std::size_t, serving::Ticket>> tickets;
    // Interleave across tables: target t of every table, then t+1, ...
    for (std::size_t t = 0; t < kTargetsPerTable; ++t) {
      for (std::size_t i = 0; i < tables.size(); ++i) {
        if (t >= targets[i].size()) continue;
        ExplainRequest request;
        request.target = targets[i][t];
        request.kind = ExplainKind::kConstraints;
        tickets.emplace_back(
            i, service.Submit(algorithm, dcs, tables[i], request));
        ++submitted;
      }
    }
    for (auto& [table_index, ticket] : tickets) {
      auto result = ticket.Wait();
      if (result.ok()) {
        ++explained;
        ++explained_per_table[table_index];
      } else {
        // An injected error the algorithm did not repair back cannot be
        // explained; that is workload signal, not a serving failure.
        TREX_CHECK(!result.status().IsCancelled())
            << result.status().ToString();
        ++unexplained;
      }
    }
    stats = service.stats();
  });
  std::printf(
      "%zu-table world, %zu rows/table, %zu explanation requests "
      "interleaved\nexplained %zu, unexplainable %zu, wall %.3fs, "
      "router: %zu engines built, %zu hits, ~%zu memo bytes resident\n",
      world.tables.size(), kRowsPerTable, submitted, explained, unexplained,
      wall_seconds, stats.router.misses, stats.router.hits,
      stats.router.approx_memo_bytes);
  std::printf(
      "JSON {\"bench\":\"serving\",\"scenario\":\"synthetic_world\","
      "\"tables\":%zu,\"rows_per_table\":%zu,\"submitted\":%zu,"
      "\"explained\":%zu,\"unexplained\":%zu,\"wall_seconds\":%.3f,"
      "\"router_misses\":%zu,\"router_hits\":%zu,"
      "\"approx_memo_bytes\":%zu}\n",
      world.tables.size(), kRowsPerTable, submitted, explained, unexplained,
      wall_seconds, stats.router.misses, stats.router.hits,
      stats.router.approx_memo_bytes);
  bench::Verdict(stats.completed + stats.failed == submitted,
                 "every synthetic-world ticket resolves");
  bench::Verdict(stats.router.misses == world.tables.size(),
                 "one engine per generated table, reused across requests");
  bool every_stream = true;
  for (std::size_t count : explained_per_table) {
    if (count == 0) every_stream = false;
  }
  bench::Verdict(every_stream,
                 "the service explains injected errors in every stream");
}

/// Scheduler scenario 4 — deadline degradation: the same
/// deadline-expired sampled job submitted twice, once under the legacy
/// hard-deadline contract (resolves `Cancelled`, zero answer) and once
/// with `degrade_on_deadline` (the expiry fires the soften token, the
/// sweep finishes its current wave, and the ticket resolves OK with
/// partial confidence-bounded estimates). The JSON row records both
/// outcomes plus the partial run's sweep count and achieved CI width.
void RunDeadlineDegradationScenario() {
  bench::Header("deadline expiry: hard cancel vs confidence-bounded degrade");
  const dc::DcSet dcs = data::SoccerConstraints();
  const auto algorithm = repair::MakeAlgorithm1();
  const auto table = std::make_shared<const Table>(data::SoccerDirtyTable());

  // A sampled request whose anytime target is unreachable: only the
  // deadline can end it before the (large) budget.
  ExplainRequest request = SampledCellsRequest(/*num_samples=*/4096,
                                               /*seed=*/17);
  AnytimeOptions anytime;
  anytime.target_ci_half_width = 1e-9;
  anytime.check_interval = 32;
  request.anytime = anytime;

  serving::RequestOptions expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  // Legacy contract: expiry cancels; the user gets nothing.
  bool hard_cancelled = false;
  {
    serving::ExplainService service;
    auto result =
        service.Submit(algorithm, dcs, table, request, expired).Wait();
    hard_cancelled = !result.ok() && result.status().IsCancelled();
  }

  // Degraded contract: same job, same expired deadline, but the expiry
  // softens — partial estimates with honest error bars come back OK.
  bool degraded_ok = false;
  bool approximate = false;
  std::size_t sweeps = 0;
  double achieved = 0.0;
  std::size_t degraded_count = 0;
  {
    serving::ExplainService service;
    serving::RequestOptions degrade = expired;
    degrade.degrade_on_deadline = true;
    auto result =
        service.Submit(algorithm, dcs, table, request, degrade).Wait();
    degraded_ok = result.ok();
    if (result.ok()) {
      approximate = result->approximate;
      sweeps = result->sweeps;
      achieved = result->achieved_ci_half_width.value_or(0.0);
    }
    degraded_count = service.stats().degraded;
  }

  std::printf(
      "expired deadline, 4096-sweep budget\n"
      "hard deadline:     %s\n"
      "degrade_on_deadline: OK=%s approximate=%s, %zu sweeps kept, "
      "achieved CI half-width %.4f\n",
      hard_cancelled ? "Cancelled (work discarded)" : "UNEXPECTED",
      degraded_ok ? "yes" : "no", approximate ? "yes" : "no", sweeps,
      achieved);
  std::printf(
      "JSON {\"bench\":\"serving\",\"scenario\":\"deadline_degradation\","
      "\"hard_cancelled\":%s,\"degraded_ok\":%s,\"approximate\":%s,"
      "\"sweeps\":%zu,\"budget\":4096,\"achieved_half_width\":%.6f,"
      "\"degraded_count\":%zu}\n",
      hard_cancelled ? "true" : "false", degraded_ok ? "true" : "false",
      approximate ? "true" : "false", sweeps, achieved, degraded_count);
  bench::Verdict(hard_cancelled,
                 "without opt-in, an expired deadline still cancels");
  bench::Verdict(degraded_ok && approximate && sweeps > 0 && sweeps < 4096,
                 "degrade_on_deadline resolves OK with partial "
                 "confidence-bounded estimates");
  bench::Verdict(degraded_count == 1 && achieved > 0.0,
                 "the degraded completion is counted and carries an "
                 "achieved CI width");
}

/// Scheduler scenario 5 — resilience: deterministic transient faults
/// healed by bounded retries, then a full circuit-breaker cycle
/// (closed → open under repeated transient failure → half-open probe
/// after cooldown → closed on probe success). The JSON row carries the
/// new self-healing telemetry: `retries`, the transient/permanent
/// failure split, the per-StatusCode failure breakdown, and the
/// breaker counters.
void RunResilienceScenario() {
  bench::Header("self-healing: retries + circuit breaker on transient faults");
  const dc::DcSet dcs = data::SoccerConstraints();
  const auto inner = repair::MakeAlgorithm1();
  const auto table = std::make_shared<const Table>(data::SoccerDirtyTable());

  // Phase 1 — healing: the backend's first two repair calls fail
  // transient; the retry loop re-runs until the schedule recovers, so
  // every ticket still resolves OK.
  serving::ServiceStats healed;
  {
    auto flaky = std::make_shared<repair::FaultyAlgorithm>(
        "bench-flaky", inner, repair::FaultyOptions{.fail_first = 2});
    serving::ServiceOptions options;
    options.retry.max_attempts = 4;
    options.retry.initial_backoff = std::chrono::milliseconds(1);
    options.retry.max_backoff = std::chrono::milliseconds(4);
    serving::ExplainService service(options);
    for (int r = 0; r < 4; ++r) {
      auto result =
          service.Submit(flaky, dcs, table, ConstraintRequest()).Wait();
      TREX_CHECK(result.ok()) << result.status().ToString();
    }
    healed = service.stats();
  }
  std::printf(
      "healing: 4 requests, first 2 repair calls fail transient — "
      "completed %zu, failed %zu, retries %zu\n",
      healed.completed, healed.failed, healed.retries);

  // Phase 2 — breaker cycle: retry budget (2 attempts) below the fault
  // budget, so the first job exhausts its retries and the two transient
  // outcomes trip the tight breaker; a second job is rejected at
  // admission during cooldown; after cooldown a third job rides the
  // half-open probe, succeeds, and closes the breaker.
  serving::ServiceStats breaker;
  bool cycle_closed = false;
  {
    auto flaky = std::make_shared<repair::FaultyAlgorithm>(
        "bench-breaker", inner, repair::FaultyOptions{.fail_first = 2});
    serving::ServiceOptions options;
    options.retry.max_attempts = 2;
    options.retry.initial_backoff = std::chrono::milliseconds(1);
    options.retry.max_backoff = std::chrono::milliseconds(2);
    options.router.breaker.window = 4;
    options.router.breaker.min_samples = 2;
    options.router.breaker.failure_rate_threshold = 0.5;
    options.router.breaker.cooldown = std::chrono::milliseconds(50);
    serving::ExplainService service(options);
    const serving::EngineKey key =
        serving::EngineRouter::KeyOf(*flaky, dcs, *table);

    auto exhausted = service.Submit(flaky, dcs, table, ConstraintRequest())
                         .Wait();
    TREX_CHECK(!exhausted.ok() && exhausted.status().IsTransient());
    auto rejected = service.Submit(flaky, dcs, table, ConstraintRequest())
                        .Wait();
    TREX_CHECK(!rejected.ok() && rejected.status().IsTransient());
    // sleep-ok: the breaker cooldown is a real-time contract; only
    // elapsed wall-clock moves it from open to half-open.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto probed = service.Submit(flaky, dcs, table, ConstraintRequest())
                      .Wait();
    TREX_CHECK(probed.ok()) << probed.status().ToString();
    cycle_closed = service.router().breaker_state(key) ==
                   serving::EngineRouter::BreakerState::kClosed;
    breaker = service.stats();
  }
  std::printf(
      "breaker: open %zu, half-open probes %zu, rejected-at-admission %zu, "
      "cycle re-closed %s\n",
      breaker.router.breaker_open, breaker.router.breaker_half_open_probes,
      breaker.router.breaker_rejected, cycle_closed ? "yes" : "no");

  std::string by_code = "{";
  for (const auto& [code, count] : breaker.failed_by_code) {
    if (by_code.size() > 1) by_code += ",";
    by_code += "\"" + std::string(StatusCodeToString(code)) +
               "\":" + std::to_string(count);
  }
  by_code += "}";
  std::printf(
      "JSON {\"bench\":\"serving\",\"scenario\":\"resilience\","
      "\"healed_requests\":%zu,\"healed_failed\":%zu,\"retries\":%zu,"
      "\"breaker_submitted\":%zu,\"breaker_completed\":%zu,"
      "\"failed_transient\":%zu,\"failed_permanent\":%zu,"
      "\"failed_by_code\":%s,\"breaker_open\":%zu,"
      "\"breaker_half_open_probes\":%zu,\"breaker_rejected\":%zu}\n",
      healed.completed, healed.failed, healed.retries, breaker.submitted,
      breaker.completed, breaker.failed_transient, breaker.failed_permanent,
      by_code.c_str(), breaker.router.breaker_open,
      breaker.router.breaker_half_open_probes,
      breaker.router.breaker_rejected);
  bench::Verdict(healed.completed == 4 && healed.failed == 0 &&
                     healed.retries == 2,
                 "transient faults heal invisibly: bounded retries, zero "
                 "failed tickets");
  bench::Verdict(cycle_closed && breaker.router.breaker_open >= 1 &&
                     breaker.router.breaker_half_open_probes >= 1 &&
                     breaker.router.breaker_rejected >= 1,
                 "the breaker completes a closed -> open -> half-open -> "
                 "closed cycle");
  bench::Verdict(breaker.failed ==
                     breaker.failed_transient + breaker.failed_permanent,
                 "every failure is classified transient or permanent");
}

}  // namespace
}  // namespace trex

int main() {
  trex::Run();
  trex::RunCoalescingScenario();
  trex::RunSaturationScenario();
  trex::RunSyntheticWorldScenario();
  trex::RunDeadlineDegradationScenario();
  trex::RunResilienceScenario();
  return 0;
}
