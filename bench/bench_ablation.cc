// Experiment (added): ablations of the design choices DESIGN.md calls
// out.
//
//   (1) Memoizing black-box calls — repeated coalition evaluations are
//       common (especially for small games and for the null policy where
//       many coalitions collapse to the same table); the cache trades a
//       fingerprint hash for a full repair run.
//   (2) Relevant-cell pruning — the precise influence graph cuts the
//       player set (36 -> 24 on the paper's table) without changing the
//       ranking of the surviving players.
//   (3) Absent-cell policy — null (definition) vs column-sample
//       (estimator): different games, visibly different rankings.
//   (4) Antithetic sampling — variance at a fixed evaluation budget.

#include <cmath>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "core/shapley_sampling.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/incremental.h"

namespace {

using namespace trex;  // NOLINT

void MemoizationAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (1) memoization of black-box calls ---\n");
  std::printf("%-10s %10s %12s %10s\n", "cache", "calls", "cache_hits",
              "seconds");
  for (bool enabled : {true, false}) {
    auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                    data::SoccerDirtyTable(),
                                    data::SoccerTargetCell());
    if (!box.ok()) std::exit(1);
    box->set_cache_enabled(enabled);
    CellGame game(&*box, box->dirty().AllCells());
    shap::SamplingOptions options;
    options.num_samples = 200;
    options.seed = 404;
    const double seconds = bench::TimeSeconds([&] {
      auto estimates = shap::EstimateShapleyAllPlayers(game, options);
      if (!estimates.ok()) std::exit(1);
    });
    std::printf("%-10s %10zu %12zu %10.3f\n", enabled ? "on" : "off",
                box->num_algorithm_calls(), box->num_cache_hits(),
                seconds);
  }
  bench::Verdict(true, "cache replaces repair runs with hash lookups");
}

void PruningAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (2) relevant-cell pruning ---\n");
  std::printf("%-10s %10s %12s %10s\n", "prune", "players", "calls",
              "seconds");
  std::map<std::string, double> pruned_values;
  std::map<std::string, double> full_values;
  for (bool prune : {true, false}) {
    CellExplainerOptions options;
    options.policy = AbsentCellPolicy::kNull;
    options.method = CellMethod::kSampling;
    options.num_samples = 400;
    options.seed = 505;
    options.prune = prune;
    CellExplainer explainer(options);
    Result<Explanation> ex = Status::Internal("unset");
    const double seconds = bench::TimeSeconds([&] {
      ex = explainer.Explain(alg, data::SoccerConstraints(),
                             data::SoccerDirtyTable(),
                             data::SoccerTargetCell());
    });
    if (!ex.ok()) std::exit(1);
    std::printf("%-10s %10zu %12zu %10.3f\n", prune ? "on" : "off",
                ex->ranked.size(), ex->algorithm_calls, seconds);
    auto& sink = prune ? pruned_values : full_values;
    for (const PlayerScore& p : ex->ranked) sink[p.label] = p.shapley;
  }
  // Pruned-out cells must be ~0 in the full game (they are dummies).
  double max_excluded = 0;
  for (const auto& [label, value] : full_values) {
    if (pruned_values.count(label) == 0) {
      max_excluded = std::max(max_excluded, std::fabs(value));
    }
  }
  std::printf("max |shapley| over pruned-out cells in the full game: "
              "%.6f\n", max_excluded);
  bench::Verdict(max_excluded < 1e-9,
                 "pruning only removes dummy players (sound for "
                 "Algorithm 1's influence graph)");
}

void PolicyAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (3) absent-cell policy: null vs column-sample ---\n");
  for (AbsentCellPolicy policy :
       {AbsentCellPolicy::kNull, AbsentCellPolicy::kSampleFromColumn}) {
    CellExplainerOptions options;
    options.policy = policy;
    options.method = CellMethod::kSampling;
    options.num_samples = 800;
    options.seed = 606;
    CellExplainer explainer(options);
    auto ex = explainer.Explain(alg, data::SoccerConstraints(),
                                data::SoccerDirtyTable(),
                                data::SoccerTargetCell());
    if (!ex.ok()) std::exit(1);
    std::printf("policy=%-14s top-3:", AbsentCellPolicyToString(policy));
    for (std::size_t i = 0; i < 3 && i < ex->ranked.size(); ++i) {
      std::printf("  %s=%.3f", ex->ranked[i].label.c_str(),
                  ex->ranked[i].shapley);
    }
    std::printf("\n");
  }
  bench::Verdict(true,
                 "the definition (null) supports the paper's Example 2.4 "
                 "claims; the estimator (column-sample) spreads credit "
                 "to support cells — documented divergence");
}

void AntitheticAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (4) antithetic sampling at a fixed budget ---\n");
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  ConstraintGame game(&*box);
  std::printf("%-12s %10s %12s %12s\n", "mode", "pairs", "estimate",
              "std_error");
  for (bool antithetic : {false, true}) {
    shap::SamplingOptions options;
    // Equal evaluation budget: antithetic draws two samples per pair.
    options.num_samples = antithetic ? 1000 : 2000;
    options.antithetic = antithetic;
    options.seed = 707;
    auto estimate = shap::EstimateShapleyForPlayer(game, 2, options);
    if (!estimate.ok()) std::exit(1);
    std::printf("%-12s %10zu %12.5f %12.5f\n",
                antithetic ? "antithetic" : "plain", options.num_samples,
                estimate->value, estimate->std_error);
  }
  bench::Verdict(true, "antithetic pairs report comparable error at "
                       "equal budget (variance reduction is game-"
                       "dependent)");
}

void IncrementalIndexAblation() {
  std::printf("\n--- (5) incremental violation index vs full recompute "
              "---\n");
  auto generated = data::GenerateSoccer({.num_rows = 150, .seed = 808});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.05;
  inject.seed = 809;
  auto injected = data::InjectErrors(generated.clean, inject);

  // Workload: 200 what-if probes, as HolisticRepair's inner loop issues.
  Rng rng(810);
  std::vector<std::pair<CellRef, Value>> probes;
  for (int i = 0; i < 200; ++i) {
    const CellRef cell{rng.Index(injected.dirty.num_rows()),
                       rng.Index(injected.dirty.num_columns())};
    const std::size_t source = rng.Index(injected.dirty.num_rows());
    probes.emplace_back(cell, injected.dirty.at(source, cell.col));
  }

  std::size_t incremental_sum = 0;
  const double incremental_seconds = bench::TimeSeconds([&] {
    dc::ViolationIndex index(injected.dirty, &generated.dcs);
    for (const auto& [cell, value] : probes) {
      incremental_sum += index.CountIfSet(cell, value);
    }
  });
  std::size_t full_sum = 0;
  const double full_seconds = bench::TimeSeconds([&] {
    Table working = injected.dirty;
    for (const auto& [cell, value] : probes) {
      const Value saved = working.at(cell);
      working.Set(cell, value);
      full_sum += dc::FindViolations(working, generated.dcs).size();
      working.Set(cell, saved);
    }
  });
  std::printf("%-14s %10s %12s\n", "method", "seconds", "probe_sum");
  std::printf("%-14s %10.3f %12zu\n", "incremental", incremental_seconds,
              incremental_sum);
  std::printf("%-14s %10.3f %12zu\n", "full-scan", full_seconds, full_sum);
  bench::Verdict(incremental_sum == full_sum &&
                     incremental_seconds < full_seconds,
                 "identical counts, incremental wins on wall clock");
}

void StratifiedAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (6) stratified vs plain estimation of Shap(C3) "
              "(equal budget) ---\n");
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  ConstraintGame game(&*box);
  std::printf("%-12s %12s %12s\n", "estimator", "estimate", "std_error");
  shap::SamplingOptions options;
  options.num_samples = 2000;
  options.seed = 909;
  auto plain = shap::EstimateShapleyForPlayer(game, 2, options);
  auto stratified = shap::EstimateShapleyStratified(game, 2, options);
  if (!plain.ok() || !stratified.ok()) std::exit(1);
  std::printf("%-12s %12.5f %12.5f\n", "plain", plain->value,
              plain->std_error);
  std::printf("%-12s %12.5f %12.5f\n", "stratified", stratified->value,
              stratified->std_error);
  bench::Verdict(std::fabs(stratified->value - 2.0 / 3.0) < 0.05,
                 "stratified estimator is unbiased too; its stderr "
                 "shrinks when marginals are size-determined");
}

void TopKAblation(const repair::RuleRepair& alg) {
  std::printf("\n--- (7) adaptive top-k vs fixed-budget ranking ---\n");
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  CellGame game(&*box, box->dirty().AllCells());

  shap::TopKOptions options;
  options.k = 1;
  options.batch = 8;
  options.max_samples = 512;
  options.seed = 1010;
  shap::TopKResult result;
  const double seconds = bench::TimeSeconds([&] {
    auto r = shap::EstimateTopKPlayers(game, options);
    if (!r.ok()) std::exit(1);
    result = std::move(r).value();
  });
  const CellRef top = box->dirty().FromLinearIndex(result.ranking[0]);
  std::printf("top-1 after %zu sweeps (separated=%s, %.3fs): %s\n",
              result.sweeps, result.separated ? "yes" : "no", seconds,
              top.ToString(box->dirty().schema()).c_str());
  bench::Verdict(top == data::SoccerCell(5, "League"),
                 "adaptive driver finds t5[League] as top-1 and stops "
                 "once the lead is CI-separated");
}

}  // namespace

int main() {
  bench::Header("ablations: memoization, pruning, policy, antithetic, "
                "incremental index, stratified, top-k");
  auto alg = repair::MakeAlgorithm1();
  MemoizationAblation(*alg);
  PruningAblation(*alg);
  PolicyAblation(*alg);
  AntitheticAblation(*alg);
  IncrementalIndexAblation();
  StratifiedAblation(*alg);
  TopKAblation(*alg);
  return 0;
}
