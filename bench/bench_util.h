// Shared helpers for the benchmark binaries: wall-clock timing and
// uniform PASS/DIVERGE verdict lines. Each bench prints the rows of the
// paper artifact it regenerates plus a verdict comparing the measured
// shape against the paper's claim; EXPERIMENTS.md collects the output.

#ifndef TREX_BENCH_BENCH_UTIL_H_
#define TREX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

namespace trex::bench {

/// Seconds elapsed while running `fn`.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Verdict(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "PASS" : "DIVERGE", claim.c_str());
}

}  // namespace trex::bench

#endif  // TREX_BENCH_BENCH_UTIL_H_
