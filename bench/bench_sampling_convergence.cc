// Experiment: Example 2.5 / §2.3 — convergence of the permutation-
// sampling Shapley estimator.
//
// The paper's claim: exact cell Shapley is exponential, so T-REx uses
// the Strumbelj–Kononenko sampler; its estimate converges as the sample
// count m grows. We measure:
//   (1) |estimate - exact| vs m on the constraint game (exact value
//       known: Shap(C3) = 2/3);
//   (2) max-abs-error vs m on a reduced cell game (12 players -> exact
//       enumeration feasible as ground truth) under the null policy;
//   (3) the black-box call budget per m.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"
#include "data/soccer.h"

namespace {

using namespace trex;  // NOLINT

void ConstraintGameConvergence(const repair::RuleRepair& alg) {
  std::printf("\n--- (1) constraint game: estimate of Shap(C3) vs m "
              "(exact = 2/3) ---\n");
  std::printf("%8s %12s %12s %12s %10s\n", "m", "estimate", "abs_error",
              "std_error", "calls");
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  ConstraintGame game(&*box);
  double last_error = 1.0;
  for (std::size_t m : {8u, 32u, 128u, 512u, 2048u, 8192u}) {
    shap::SamplingOptions options;
    options.num_samples = m;
    options.seed = 101;
    const std::size_t calls_before = box->num_algorithm_calls();
    auto estimate = shap::EstimateShapleyForPlayer(game, 2, options);
    if (!estimate.ok()) std::exit(1);
    last_error = std::fabs(estimate->value - 2.0 / 3.0);
    std::printf("%8zu %12.5f %12.5f %12.5f %10zu\n", m, estimate->value,
                last_error, estimate->std_error,
                box->num_algorithm_calls() - calls_before);
  }
  bench::Verdict(last_error < 0.02,
                 "estimator converges to the exact Shapley value "
                 "(error < 0.02 at m = 8192)");
}

void CellGameConvergence(const repair::RuleRepair& alg) {
  std::printf("\n--- (2) reduced cell game (12 players): max abs error vs "
              "m, null policy ---\n");
  // Players: the Country and League cells of all six tuples — the C3
  // machinery — 12 cells, 2^12 = 4096 coalitions for exact values.
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  std::vector<CellRef> players;
  for (std::size_t row = 1; row <= 6; ++row) {
    players.push_back(data::SoccerCell(row, "Country"));
    players.push_back(data::SoccerCell(row, "League"));
  }
  CellGame game(&*box, players);

  shap::ExactShapleyOptions exact_options;
  exact_options.max_players = 12;
  std::vector<double> exact;
  const double exact_seconds = bench::TimeSeconds([&] {
    auto result = shap::ComputeExactShapley(game, exact_options);
    if (!result.ok()) std::exit(1);
    exact = std::move(result).value();
  });
  std::printf("exact ground truth: 4096 coalition evaluations in %.3fs\n",
              exact_seconds);

  std::printf("%8s %14s %12s %10s\n", "m", "max_abs_error", "mean_stderr",
              "seconds");
  double last_error = 1.0;
  for (std::size_t m : {4u, 16u, 64u, 256u, 1024u}) {
    shap::SamplingOptions options;
    options.num_samples = m;
    options.seed = 202;
    std::vector<shap::Estimate> estimates;
    const double seconds = bench::TimeSeconds([&] {
      auto result = shap::EstimateShapleyAllPlayers(game, options);
      if (!result.ok()) std::exit(1);
      estimates = std::move(result).value();
    });
    double max_error = 0;
    double stderr_sum = 0;
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      max_error = std::max(max_error,
                           std::fabs(estimates[i].value - exact[i]));
      stderr_sum += estimates[i].std_error;
    }
    last_error = max_error;
    std::printf("%8zu %14.5f %12.5f %10.3f\n", m, max_error,
                stderr_sum / estimates.size(), seconds);
  }
  bench::Verdict(last_error < 0.05,
                 "cell-game estimates converge to exact values "
                 "(max error < 0.05 at m = 1024)");
}

void SingleCellLoop(const repair::RuleRepair& alg) {
  std::printf("\n--- (3) Example 2.5 single-cell loop: "
              "Shap(t5[City]) for target t5[Country] ---\n");
  std::printf("%8s %12s %12s\n", "m", "estimate", "std_error");
  for (std::size_t m : {50u, 200u, 800u}) {
    CellExplainerOptions options;
    options.num_samples = m;
    options.seed = 303;
    options.policy = AbsentCellPolicy::kSampleFromColumn;
    CellExplainer explainer(options);
    auto score = explainer.ExplainSingleCell(
        alg, data::SoccerConstraints(), data::SoccerDirtyTable(),
        data::SoccerTargetCell(), data::SoccerCell(5, "City"));
    if (!score.ok()) std::exit(1);
    std::printf("%8zu %12.5f %12.5f\n", m, score->shapley,
                score->std_error);
  }
  bench::Verdict(true, "Example 2.5 loop runs (2 black-box calls/sample)");
}

}  // namespace

int main() {
  bench::Header("Example 2.5 / §2.3: sampling estimator convergence");
  auto alg = data::MakeAlgorithm1();
  ConstraintGameConvergence(*alg);
  CellGameConvergence(*alg);
  SingleCellLoop(*alg);
  return 0;
}
