// Experiment: Example 2.5 / §2.3 — convergence of the permutation-
// sampling Shapley estimator.
//
// The paper's claim: exact cell Shapley is exponential, so T-REx uses
// the Strumbelj–Kononenko sampler; its estimate converges as the sample
// count m grows. We measure:
//   (1) |estimate - exact| vs m on the constraint game (exact value
//       known: Shap(C3) = 2/3);
//   (2) max-abs-error vs m on a reduced cell game (12 players -> exact
//       enumeration feasible as ground truth) under the null policy;
//   (3) the black-box call budget per m.

//   (4) the anytime path: confidence-bounded early stopping on the
//       wave-synchronous parallel driver — anytime(8 threads) must reach
//       the target CI in less wall-clock than both serial early-stop and
//       the fixed-budget parallel run, with estimates bit-identical
//       across thread counts (same stopping wave). Emits "JSON " rows
//       for the CI smoke; `--anytime_only` runs just this scenario.

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "core/shapley_exact.h"
#include "core/shapley_sampling.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace {

using namespace trex;  // NOLINT

void ConstraintGameConvergence(const repair::RuleRepair& alg) {
  std::printf("\n--- (1) constraint game: estimate of Shap(C3) vs m "
              "(exact = 2/3) ---\n");
  std::printf("%8s %12s %12s %12s %10s\n", "m", "estimate", "abs_error",
              "std_error", "calls");
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  ConstraintGame game(&*box);
  double last_error = 1.0;
  for (std::size_t m : {8u, 32u, 128u, 512u, 2048u, 8192u}) {
    shap::SamplingOptions options;
    options.num_samples = m;
    options.seed = 101;
    const std::size_t calls_before = box->num_algorithm_calls();
    auto estimate = shap::EstimateShapleyForPlayer(game, 2, options);
    if (!estimate.ok()) std::exit(1);
    last_error = std::fabs(estimate->value - 2.0 / 3.0);
    std::printf("%8zu %12.5f %12.5f %12.5f %10zu\n", m, estimate->value,
                last_error, estimate->std_error,
                box->num_algorithm_calls() - calls_before);
  }
  bench::Verdict(last_error < 0.02,
                 "estimator converges to the exact Shapley value "
                 "(error < 0.02 at m = 8192)");
}

void CellGameConvergence(const repair::RuleRepair& alg) {
  std::printf("\n--- (2) reduced cell game (12 players): max abs error vs "
              "m, null policy ---\n");
  // Players: the Country and League cells of all six tuples — the C3
  // machinery — 12 cells, 2^12 = 4096 coalitions for exact values.
  auto box = BlackBoxRepair::Make(&alg, data::SoccerConstraints(),
                                  data::SoccerDirtyTable(),
                                  data::SoccerTargetCell());
  if (!box.ok()) std::exit(1);
  std::vector<CellRef> players;
  for (std::size_t row = 1; row <= 6; ++row) {
    players.push_back(data::SoccerCell(row, "Country"));
    players.push_back(data::SoccerCell(row, "League"));
  }
  CellGame game(&*box, players);

  shap::ExactShapleyOptions exact_options;
  exact_options.max_players = 12;
  std::vector<double> exact;
  const double exact_seconds = bench::TimeSeconds([&] {
    auto result = shap::ComputeExactShapley(game, exact_options);
    if (!result.ok()) std::exit(1);
    exact = std::move(result).value();
  });
  std::printf("exact ground truth: 4096 coalition evaluations in %.3fs\n",
              exact_seconds);

  std::printf("%8s %14s %12s %10s\n", "m", "max_abs_error", "mean_stderr",
              "seconds");
  double last_error = 1.0;
  for (std::size_t m : {4u, 16u, 64u, 256u, 1024u}) {
    shap::SamplingOptions options;
    options.num_samples = m;
    options.seed = 202;
    std::vector<shap::Estimate> estimates;
    const double seconds = bench::TimeSeconds([&] {
      auto result = shap::EstimateShapleyAllPlayers(game, options);
      if (!result.ok()) std::exit(1);
      estimates = std::move(result).value();
    });
    double max_error = 0;
    double stderr_sum = 0;
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      max_error = std::max(max_error,
                           std::fabs(estimates[i].value - exact[i]));
      stderr_sum += estimates[i].std_error;
    }
    last_error = max_error;
    std::printf("%8zu %14.5f %12.5f %10.3f\n", m, max_error,
                stderr_sum / estimates.size(), seconds);
  }
  bench::Verdict(last_error < 0.05,
                 "cell-game estimates converge to exact values "
                 "(max error < 0.05 at m = 1024)");
}

void SingleCellLoop(const repair::RuleRepair& alg) {
  std::printf("\n--- (3) Example 2.5 single-cell loop: "
              "Shap(t5[City]) for target t5[Country] ---\n");
  std::printf("%8s %12s %12s\n", "m", "estimate", "std_error");
  for (std::size_t m : {50u, 200u, 800u}) {
    CellExplainerOptions options;
    options.num_samples = m;
    options.seed = 303;
    options.policy = AbsentCellPolicy::kSampleFromColumn;
    CellExplainer explainer(options);
    auto score = explainer.ExplainSingleCell(
        alg, data::SoccerConstraints(), data::SoccerDirtyTable(),
        data::SoccerTargetCell(), data::SoccerCell(5, "City"));
    if (!score.ok()) std::exit(1);
    std::printf("%8zu %12.5f %12.5f\n", m, score->shapley,
                score->std_error);
  }
  bench::Verdict(true, "Example 2.5 loop runs (2 black-box calls/sample)");
}

/// Latency-padded synthetic game for the anytime scenario: every
/// characteristic-function call sleeps a fixed pad — modelling the
/// black-box repair cost — so wave parallelism shows up as wall-clock
/// even on a single-core host (sleeps overlap; compute would not). The
/// value mixes per-player weights with a mask-keyed pseudo-noise term,
/// giving every player's marginals real variance to bound.
class PaddedNoisyGame : public shap::Game {
 public:
  PaddedNoisyGame(std::size_t n, std::chrono::microseconds pad)
      : n_(n), pad_(pad) {}
  std::size_t num_players() const override { return n_; }
  double Value(const shap::Coalition& coalition) const override {
    // sleep-ok: models repair-call latency; the bench times it on purpose.
    if (pad_.count() > 0) std::this_thread::sleep_for(pad_);
    std::uint64_t mask = 0;
    double v = 0.0;
    for (std::size_t i = 0; i < coalition.size(); ++i) {
      if (coalition[i]) {
        mask |= std::uint64_t{1} << i;
        v += 0.1 * static_cast<double>(i + 1);
      }
    }
    // Deterministic mask-keyed noise: marginals jump by ±0.5 depending
    // on the coalition, so every player needs real samples to converge.
    std::uint64_t h = mask * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    if (h & 1) v += 0.5;
    return v;
  }

 private:
  std::size_t n_;
  std::chrono::microseconds pad_;
};

/// Order-sensitive digest of the estimate vector's exact bit patterns —
/// equal checksums mean bit-identical values, errors, and counts.
std::uint64_t EstimateChecksum(const std::vector<shap::Estimate>& estimates) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  auto fold = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const shap::Estimate& e : estimates) {
    fold(std::bit_cast<std::uint64_t>(e.value));
    fold(std::bit_cast<std::uint64_t>(e.std_error));
    fold(e.num_samples);
  }
  return h;
}

void AnytimeScenario() {
  bench::Header("(4) anytime: parallel confidence-bounded early stopping");
  constexpr std::size_t kPlayers = 6;
  constexpr std::size_t kBudget = 1024;
  constexpr double kTarget = 0.07;
  constexpr std::chrono::microseconds kPad(200);

  shap::SamplingOptions base;
  base.num_samples = kBudget;
  base.seed = 77;
  base.shard_size = 32;
  base.check_interval = 256;  // 8 shards per wave
  base.stop.target_half_width = kTarget;

  struct Row {
    const char* mode;
    std::size_t threads;
    bool anytime;
  };
  const Row rows[] = {
      {"serial_earlystop", 1, true},
      {"fixed_parallel", 8, false},
      {"anytime_parallel", 8, true},
  };

  std::printf("%18s %8s %8s %10s %16s %18s\n", "mode", "threads", "sweeps",
              "wall_s", "achieved_hw", "checksum");
  double wall[3] = {0, 0, 0};
  shap::SweepOutcome outcomes[3];
  std::uint64_t checksums[3] = {0, 0, 0};
  for (int r = 0; r < 3; ++r) {
    const PaddedNoisyGame game(kPlayers, kPad);
    shap::SamplingOptions options = base;
    options.num_threads = rows[r].threads;
    if (!rows[r].anytime) options.stop = shap::StopRule{};  // fixed budget
    std::vector<shap::Estimate> estimates;
    wall[r] = bench::TimeSeconds([&] {
      auto result =
          shap::EstimateShapleyAllPlayers(game, options, &outcomes[r]);
      if (!result.ok()) std::exit(1);
      estimates = std::move(result).value();
    });
    checksums[r] = EstimateChecksum(estimates);
    std::printf("%18s %8zu %8zu %10.3f %16.5f %18llx\n", rows[r].mode,
                rows[r].threads, outcomes[r].sweeps, wall[r],
                outcomes[r].achieved_half_width,
                static_cast<unsigned long long>(checksums[r]));
    std::printf(
        "JSON {\"bench\":\"sampling\",\"scenario\":\"anytime\","
        "\"mode\":\"%s\",\"threads\":%zu,\"sweeps\":%zu,\"budget\":%zu,"
        "\"wall_seconds\":%.4f,\"achieved_half_width\":%.6f,"
        "\"target_half_width\":%.6f,\"early_stopped\":%s,"
        "\"checksum\":\"%016llx\"}\n",
        rows[r].mode, rows[r].threads, outcomes[r].sweeps, kBudget, wall[r],
        outcomes[r].achieved_half_width, rows[r].anytime ? kTarget : 0.0,
        outcomes[r].stopped_early ? "true" : "false",
        static_cast<unsigned long long>(checksums[r]));
  }

  bench::Verdict(outcomes[0].stopped_early && outcomes[0].sweeps < kBudget,
                 "the stopping rule fires before the fixed budget");
  bench::Verdict(outcomes[0].achieved_half_width <= kTarget &&
                     outcomes[2].achieved_half_width <= kTarget,
                 "achieved CI half-width meets the requested target");
  bench::Verdict(outcomes[0].sweeps == outcomes[2].sweeps &&
                     checksums[0] == checksums[2],
                 "anytime(8 threads) is bit-identical to serial early-stop "
                 "(same stopping wave, same estimates)");
  bench::Verdict(wall[2] < wall[0],
                 "anytime(8 threads) beats serial early-stop on wall-clock");
  bench::Verdict(wall[2] < wall[1],
                 "anytime(8 threads) beats the fixed-budget parallel run");
}

}  // namespace

int main(int argc, char** argv) {
  const bool anytime_only =
      argc > 1 && std::strcmp(argv[1], "--anytime_only") == 0;
  bench::Header("Example 2.5 / §2.3: sampling estimator convergence");
  if (!anytime_only) {
    auto alg = repair::MakeAlgorithm1();
    ConstraintGameConvergence(*alg);
    CellGameConvergence(*alg);
    SingleCellLoop(*alg);
  }
  AnytimeScenario();
  return 0;
}
