// Batched multi-target explanation vs. the naive per-query loop.
//
// The seed API re-ran the reference repair and rebuilt the memo caches
// for every explained cell. `Engine::ExplainBatch` shares one
// `BlackBoxRepair` across all targets, so a batch of constraint
// explanations pays the 2^|C| subset sweep once. This bench explains
// every repaired cell of a 3-error soccer table both ways and compares
// total black-box algorithm calls (the paper's §2.3 unit of cost) and
// wall-clock time, then demonstrates multi-threaded cell sampling
// returning bit-identical estimates.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "table/diff.h"

namespace trex {
namespace {

Table ThreeErrorTable() {
  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(3, "City"), Value("Madird"));
  return dirty;
}

ExplainRequest ConstraintRequest(CellRef target) {
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kConstraints;
  return request;
}

ExplainRequest CellsRequest(CellRef target) {
  ExplainRequest request;
  request.target = target;
  request.kind = ExplainKind::kCells;
  request.cells.policy = AbsentCellPolicy::kNull;
  request.cells.method = CellMethod::kSampling;
  request.cells.num_samples = 192;
  return request;
}

void Run() {
  const auto algorithm = repair::MakeAlgorithm1();
  const dc::DcSet dcs = data::SoccerConstraints();
  const Table dirty = ThreeErrorTable();

  // The targets: every cell the reference repair changes.
  Engine probe(algorithm, dcs, dirty);
  TREX_CHECK(probe.EnsureRepair().ok());
  const auto diff = DiffTables(dirty, probe.reference_clean());
  TREX_CHECK(diff.ok());
  std::vector<CellRef> targets;
  for (const RepairedCell& cell : *diff) targets.push_back(cell.cell);
  std::printf("targets: %zu repaired cells\n", targets.size());

  bench::Header("constraint explanations: serial loop vs ExplainBatch");
  std::size_t serial_calls = 0;
  const double serial_seconds = bench::TimeSeconds([&] {
    for (CellRef target : targets) {
      // The seed workflow: a fresh evaluator per query.
      Engine engine(algorithm, dcs, dirty);
      auto result = engine.Explain(ConstraintRequest(target));
      TREX_CHECK(result.ok()) << result.status().ToString();
      serial_calls += engine.num_algorithm_calls();
    }
  });

  Engine batch_engine(algorithm, dcs, dirty);
  std::vector<ExplainRequest> requests;
  for (CellRef target : targets) requests.push_back(ConstraintRequest(target));
  BatchStats stats;
  const double batch_seconds = bench::TimeSeconds([&] {
    auto batch = batch_engine.ExplainBatch(requests);
    TREX_CHECK(batch.ok()) << batch.status().ToString();
    TREX_CHECK_EQ(batch->stats.failed_requests, 0u);
    stats = batch->stats;
  });

  std::printf(
      "serial:  %zu algorithm calls, %.3fs\n"
      "batched: %zu algorithm calls (%zu reference repairs, %zu cache "
      "hits, %zu cross-target), %.3fs\n",
      serial_calls, serial_seconds, stats.algorithm_calls,
      stats.reference_repairs, stats.cache_hits, stats.cross_request_hits,
      batch_seconds);
  bench::Verdict(stats.reference_repairs == 1,
                 "batch runs exactly one reference repair");
  bench::Verdict(stats.algorithm_calls < serial_calls,
                 "batch needs fewer algorithm calls than the serial loop");
  bench::Verdict(stats.cross_request_hits > 0,
                 "later targets reuse earlier targets' evaluations");

  bench::Header("cell sampling: thread sharding is value-stable");
  std::vector<Explanation> per_config;
  std::vector<double> seconds;
  for (std::size_t num_threads :
       {std::size_t{1}, ThreadPool::DefaultThreads()}) {
    EngineOptions options;
    options.num_threads = num_threads;
    Engine engine(algorithm, dcs, dirty, options);
    Explanation ex;
    seconds.push_back(bench::TimeSeconds([&] {
      auto result = engine.Explain(CellsRequest(targets.back()));
      TREX_CHECK(result.ok()) << result.status().ToString();
      ex = std::move(*result->explanation);
    }));
    std::printf("threads=%zu: %.3fs (%s)\n", num_threads, seconds.back(),
                ex.method.c_str());
    per_config.push_back(std::move(ex));
  }
  bool identical = per_config[0].ranked.size() == per_config[1].ranked.size();
  for (std::size_t i = 0; identical && i < per_config[0].ranked.size(); ++i) {
    identical = per_config[0].ranked[i].label ==
                    per_config[1].ranked[i].label &&
                per_config[0].ranked[i].shapley ==
                    per_config[1].ranked[i].shapley;
  }
  bench::Verdict(identical,
                 "sharded estimates are bit-identical across thread counts");
  if (seconds[1] > 0) {
    std::printf("speedup at %zu threads: %.2fx\n",
                ThreadPool::DefaultThreads(), seconds[0] / seconds[1]);
  }
}

}  // namespace
}  // namespace trex

int main() {
  trex::Run();
  return 0;
}
