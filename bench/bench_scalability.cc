// Experiment: §2.3 scalability claims — "computing the Shapley value is
// exponential time in the number of DCs/table cells ... with DCs the
// naïve approach is feasible as the number of DCs is usually small ...
// the number of cells in a table can be very large, so T-REx uses a
// sampling algorithm".
//
// Cross-backend workload sweep (runs before the google-benchmark cases):
// for each size in --cross_backend_rows (default 1000,10000,100000) the
// harness in workload/comparison.h generates a ground-truth synthetic
// world, injects errors, and drives every registered repair backend over
// the same dirty table through `Engine::ExplainBatch`, emitting one
// "JSON {...}" line per (backend, size) with repair-quality and
// explanation-stability metrics. Flags (stripped before google-benchmark
// sees argv):
//   --cross_backend_rows=a,b,c   comma-separated sweep sizes
//   --cross_backend_targets=N    explained targets per backend (default 4)
//   --cross_backend_sealed       run engines with sealed-target memo
//                                compaction (EngineOptions::seal_targets;
//                                bit-identical results, compact memo —
//                                CI A/Bs this against the default run)
//   --cross_backend_only         skip the google-benchmark cases (CI smoke)
//   --no_cross_backend           skip the sweep
//
// google-benchmark sweeps:
//   * ExactConstraintShapley/k     — 2^k growth in black-box calls;
//   * SamplingCellShapley/rows    — sampling cost grows ~linearly with
//                                    the player count (fixed m);
//   * Repair<alg>/rows            — cost of one black-box call, the
//                                    unit all explanation budgets are
//                                    denominated in.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/explainer.h"
#include "core/repair_game.h"
#include "core/shapley_exact.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "dc/parser.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"
#include "workload/comparison.h"

namespace {

using namespace trex;  // NOLINT

/// A DC set with k constraints over the soccer schema: the four paper
/// DCs plus synthetic FD variants (distinct but harmless) to grow k.
dc::DcSet GrowDcSet(std::size_t k) {
  dc::DcSet dcs = data::SoccerConstraints();
  const Schema schema = data::SoccerSchema();
  const char* extras[] = {
      "!(t1.Team == t2.Team & t1.Country != t2.Country)",
      "!(t1.Team == t2.Team & t1.League != t2.League)",
      "!(t1.City == t2.City & t1.League != t2.League)",
      "!(t1.League == t2.League & t1.City == t2.City & t1.Team != t2.Team "
      "& t1.Year == t2.Year)",
      "!(t1.Team == t2.Team & t1.Year == t2.Year & t1.Place != t2.Place)",
      "!(t1.League == t2.League & t1.Year == t2.Year & t1.Place == "
      "t2.Place & t1.City != t2.City)",
      "!(t1.Country == t2.Country & t1.League != t2.League & t1.City == "
      "t2.City)",
      "!(t1.Team == t2.Team & t1.Place == t2.Place & t1.Year != t2.Year)",
      "!(t1.City == t2.City & t1.Year == t2.Year & t1.Team != t2.Team & "
      "t1.Place == t2.Place)",
      "!(t1.League == t2.League & t1.Team == t2.Team & t1.City != "
      "t2.City)",
      "!(t1.Country == t2.Country & t1.Year == t2.Year & t1.League != "
      "t2.League & t1.Place == t2.Place)",
      "!(t1.Team == t2.Team & t1.City == t2.City & t1.Year != t2.Year & "
      "t1.Place == t2.Place)",
  };
  std::size_t i = 0;
  while (dcs.size() < k) {
    auto dc = dc::ParseDc(extras[i % std::size(extras)], schema,
                          "X" + std::to_string(i + 1));
    if (!dc.ok()) std::abort();
    dcs.Add(std::move(dc).value());
    ++i;
  }
  return dcs.Subset((std::uint64_t{1} << k) - 1);
}

void ExactConstraintShapley(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  auto alg = repair::MakeAlgorithm1();
  const dc::DcSet dcs = GrowDcSet(k);
  const Table dirty = data::SoccerDirtyTable();

  std::size_t calls = 0;
  for (auto _ : state) {
    auto box = BlackBoxRepair::Make(alg.get(), dcs, dirty,
                                    data::SoccerTargetCell());
    if (!box.ok()) state.SkipWithError("box failed");
    ConstraintGame game(&*box);
    shap::ExactShapleyOptions options;
    options.max_players = 22;
    auto values = shap::ComputeExactShapley(game, options);
    if (!values.ok()) state.SkipWithError("shapley failed");
    benchmark::DoNotOptimize(values);
    calls = box->num_algorithm_calls();
  }
  state.counters["blackbox_calls"] = static_cast<double>(calls);
}
BENCHMARK(ExactConstraintShapley)->DenseRange(4, 14, 2)
    ->Unit(benchmark::kMillisecond);

void SamplingCellShapley(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  auto generated = data::GenerateSoccer({.num_rows = rows, .seed = 5});
  const Schema schema = generated.clean.schema();
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.10;
  inject.weight_swap = 1.0;  // swaps only: detectable & repairable
  inject.weight_typo = 0.0;
  inject.weight_missing = 0.0;
  inject.columns = {*schema.IndexOf("Country")};
  inject.seed = 6;
  auto injected = data::InjectErrors(generated.clean, inject);
  auto alg = repair::MakeAlgorithm1();

  CellExplainerOptions options;
  options.num_samples = 3;  // fixed tiny m: measure per-sweep cost
  options.policy = AbsentCellPolicy::kNull;
  options.method = CellMethod::kSampling;
  options.seed = 7;
  CellExplainer explainer(options);

  // Find an injected error the algorithm actually repairs back.
  CellRef target{};
  bool found = false;
  for (const RepairedCell& error : injected.injected) {
    auto ex =
        explainer.Explain(*alg, generated.dcs, injected.dirty, error.cell);
    if (ex.ok()) {
      target = error.cell;
      found = true;
      break;
    }
  }
  if (!found) {
    state.SkipWithError("no repaired error cell to explain");
    return;
  }

  std::size_t players = 0;
  for (auto _ : state) {
    auto ex = explainer.Explain(*alg, generated.dcs, injected.dirty,
                                target);
    if (!ex.ok()) {
      state.SkipWithError(ex.status().ToString().c_str());
      return;
    }
    players = ex->ranked.size();
    benchmark::DoNotOptimize(ex);
  }
  state.counters["players"] = static_cast<double>(players);
}
BENCHMARK(SamplingCellShapley)->RangeMultiplier(2)->Range(16, 64)
    ->Unit(benchmark::kMillisecond);

template <typename Alg>
void RepairCost(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  auto generated = data::GenerateSoccer({.num_rows = rows, .seed = 11});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.03;
  inject.seed = 12;
  auto injected = data::InjectErrors(generated.clean, inject);
  Alg alg;
  for (auto _ : state) {
    auto repaired = alg.Repair(generated.dcs, injected.dirty);
    if (!repaired.ok()) state.SkipWithError("repair failed");
    benchmark::DoNotOptimize(repaired);
  }
}
BENCHMARK(RepairCost<repair::HoloCleanRepair>)
    ->RangeMultiplier(2)->Range(32, 256)->Unit(benchmark::kMillisecond)
    ->Name("RepairHoloClean");
BENCHMARK(RepairCost<repair::HolisticRepair>)
    ->RangeMultiplier(2)->Range(32, 256)->Unit(benchmark::kMillisecond)
    ->Name("RepairHolistic");
BENCHMARK(RepairCost<repair::FdRepair>)
    ->RangeMultiplier(2)->Range(32, 256)->Unit(benchmark::kMillisecond)
    ->Name("RepairFd");

void RuleRepairCost(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  auto generated = data::GenerateSoccer({.num_rows = rows, .seed = 11});
  data::ErrorInjectorOptions inject;
  inject.error_rate = 0.03;
  inject.seed = 12;
  auto injected = data::InjectErrors(generated.clean, inject);
  auto alg = repair::MakeAlgorithm1();
  for (auto _ : state) {
    auto repaired = alg->Repair(generated.dcs, injected.dirty);
    if (!repaired.ok()) state.SkipWithError("repair failed");
    benchmark::DoNotOptimize(repaired);
  }
}
BENCHMARK(RuleRepairCost)->RangeMultiplier(2)->Range(32, 256)
    ->Unit(benchmark::kMillisecond)->Name("RepairAlgorithm1");

/// One harness invocation per sweep size; one JSON line per backend.
void RunCrossBackendSweep(const std::vector<std::size_t>& sizes,
                          std::size_t num_targets, bool sealed) {
  for (std::size_t rows : sizes) {
    workload::ComparisonOptions options;
    options.world.num_rows = rows;
    options.world.seed = 101;
    options.errors.seed = 102;
    // Fixed error budget: the sweep measures how cost scales with table
    // size, so the ground-truth error count is pinned once tables are
    // large enough to hit the cap (inference-style backends' work
    // scales with noisy cells, not rows).
    options.errors.max_errors = 256;
    options.num_targets = num_targets;
    options.engine.seal_targets = sealed;
    auto report = workload::RunComparison(options);
    if (!report.ok()) {
      std::fprintf(stderr, "cross-backend sweep failed at %zu rows: %s\n",
                   rows, report.status().ToString().c_str());
      std::exit(1);
    }
    std::printf(
        "\n=== cross-backend comparison: %zu rows, %zu injected errors, "
        "%zu targets ===\n",
        report->num_rows, report->num_errors, report->num_targets);
    for (std::size_t i = 0; i < report->backends.size(); ++i) {
      const workload::BackendRun& run = report->backends[i];
      if (run.error.empty()) {
        std::printf("%-12s %s  explained %zu/%zu  tau(mean)=%.3f\n",
                    run.backend.c_str(), run.quality.ToString().c_str(),
                    run.explained_targets, report->num_targets,
                    report->stability[i].mean_kendall_tau);
      } else {
        std::printf("%-12s FAILED: %s\n", run.backend.c_str(),
                    run.error.c_str());
      }
      std::printf("JSON %s\n", workload::BackendJsonLine(*report, i).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trex;  // NOLINT

  std::vector<std::size_t> sizes = {1000, 10000, 100000};
  std::size_t num_targets = 4;
  bool sweep = true;
  bool gbench = true;
  bool sealed = false;

  // Strip the sweep's own flags so google-benchmark never sees them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--cross_backend_rows=", 0) == 0) {
      sizes.clear();
      for (const std::string& part :
           Split(value_of("--cross_backend_rows="), ',')) {
        auto parsed = ParseInt64(Trim(part));
        if (!parsed.ok() || *parsed <= 0) {
          std::fprintf(stderr, "bad --cross_backend_rows entry: '%s'\n",
                       part.c_str());
          return 1;
        }
        sizes.push_back(static_cast<std::size_t>(*parsed));
      }
    } else if (arg.rfind("--cross_backend_targets=", 0) == 0) {
      auto parsed = ParseInt64(value_of("--cross_backend_targets="));
      if (!parsed.ok() || *parsed <= 0) {
        std::fprintf(stderr, "bad --cross_backend_targets value\n");
        return 1;
      }
      num_targets = static_cast<std::size_t>(*parsed);
    } else if (arg == "--cross_backend_sealed") {
      sealed = true;
    } else if (arg == "--cross_backend_only") {
      gbench = false;
    } else if (arg == "--no_cross_backend") {
      sweep = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (sweep) RunCrossBackendSweep(sizes, num_targets, sealed);
  if (gbench) {
    int pass_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
