// Experiment: §4 demo scenario — explanation-guided debugging.
//
// Scenario A (constraints): start with an initial DC set containing a
// deliberately wrong constraint; HoloClean-style repair corrupts cells;
// T-REx ranks the DCs for a misrepaired cell; removing the top-ranked DC
// and re-repairing improves repair quality ("We will show how removing
// or changing the highest ranked DCs improves the repair of the
// specified table cell").
//
// Scenario B (cells): appropriate DCs, but poisoned cells cause a wrong
// repair; T-REx ranks the influencing cells; fixing the top-ranked
// *other* cell and re-repairing yields the correct value.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "serving/report.h"
#include "serving/session.h"
#include "data/errors.h"
#include "data/generator.h"
#include "data/soccer.h"
#include "dc/parser.h"
#include "repair/metrics.h"
#include "repair/rule_repair.h"
#include "repair/soccer_algorithm1.h"

namespace {

using namespace trex;  // NOLINT

void ScenarioA() {
  std::printf("\n--- Scenario A: debugging a wrong constraint ---\n");
  auto generated = data::GenerateSoccer({.num_rows = 40, .seed = 91});

  // The analyst's initial constraint set includes a wrong FD
  // City -> Team ("every city has one team").
  auto bad = dc::ParseDc("BAD: !(t1.City == t2.City & t1.Team != t2.Team)",
                         generated.clean.schema());
  if (!bad.ok()) std::exit(1);
  dc::DcSet dcs = generated.dcs;
  dcs.Add(*bad);

  std::vector<repair::RepairRule> rules{
      {"C1", repair::RuleAction::kSetMostCommon, "City", ""},
      {"C2", repair::RuleAction::kSetMostCommonGiven, "Country", "City"},
      {"C3", repair::RuleAction::kSetMostCommon, "Country", ""},
      {"BAD", repair::RuleAction::kSetMostCommonGiven, "Team", "City"}};
  auto alg = std::make_shared<repair::RuleRepair>("demo-repairer", rules);

  TRexSession session(alg, dcs, generated.clean);
  if (!session.Repair().ok()) std::exit(1);
  auto before = repair::EvaluateRepair(generated.clean, session.clean(),
                                       generated.clean, generated.dcs);
  if (!before.ok()) std::exit(1);
  std::printf("repair on CLEAN data with the bad DC: %s\n",
              before->ToString().c_str());
  if (session.repaired_cells().empty()) {
    std::printf("premise failed: bad DC caused no damage\n");
    bench::Verdict(false, "scenario A premise");
    return;
  }
  const RepairedCell victim = session.repaired_cells().front();
  std::printf("misrepaired cell of interest: %s\n",
              victim.ToString(generated.clean.schema()).c_str());

  auto ex = session.ExplainConstraints(victim.cell);
  if (!ex.ok()) std::exit(1);
  std::printf("%s", RenderRanking(*ex).c_str());
  const std::string culprit = ex->ranked[0].label;
  bench::Verdict(culprit == "BAD",
                 "the wrong constraint is ranked #1 for the misrepair");

  if (!session.RemoveConstraint(culprit).ok()) std::exit(1);
  if (!session.Repair().ok()) std::exit(1);
  auto after = repair::EvaluateRepair(generated.clean, session.clean(),
                                      generated.clean, generated.dcs);
  if (!after.ok()) std::exit(1);
  std::printf("after removing '%s' and re-repairing: %s\n",
              culprit.c_str(), after->ToString().c_str());
  bench::Verdict(after->cells_changed < before->cells_changed,
                 "removing the top-ranked DC improves the repair "
                 "(fewer wrong changes)");
}

void ScenarioB() {
  std::printf("\n--- Scenario B: debugging poisoned cells ---\n");
  // The paper's table with an extra poisoned cell: t6[City] = Capital
  // makes 'Capital' tie for majority among Real Madrid's cities, so
  // Algorithm 1 rewrites t3[City] to Capital — a wrong repair.
  Table dirty = data::SoccerDirtyTable();
  dirty.Set(data::SoccerCell(6, "City"), Value("Capital"));
  auto alg = repair::MakeAlgorithm1();
  TRexSession session(alg, data::SoccerConstraints(), dirty);
  if (!session.Repair().ok()) std::exit(1);

  const CellRef victim = data::SoccerCell(3, "City");
  std::printf("t3[City] after repair: %s (should be Madrid)\n",
              session.clean().at(victim).ToString().c_str());
  const bool premise = session.clean().at(victim) == Value("Capital");
  bench::Verdict(premise, "poisoned cell causes a wrong repair");
  if (!premise) return;

  CellExplainerOptions options;
  options.policy = AbsentCellPolicy::kNull;
  options.num_samples = 800;
  options.seed = 92;
  auto ex = session.ExplainCells(victim, options);
  if (!ex.ok()) std::exit(1);
  ReportOptions report;
  report.top_k = 8;
  std::printf("%s", RenderRanking(*ex, report).c_str());

  // The poisoned t6[City] must rank among the influential cells
  // (excluding the victim's own row cells).
  std::map<std::string, double> values;
  for (const PlayerScore& p : ex->ranked) values[p.label] = p.shapley;
  bench::Verdict(values.at("t6[City]") > 0,
                 "the poisoned cell t6[City] carries positive influence");

  if (!session
           .SetDirtyCell(data::SoccerCell(6, "City"), Value("Madrid"))
           .ok()) {
    std::exit(1);
  }
  if (!session.Repair().ok()) std::exit(1);
  std::printf("t3[City] after fixing t6[City] and re-repairing: %s\n",
              session.clean().at(victim).ToString().c_str());
  bench::Verdict(session.clean().at(victim) == Value("Madrid"),
                 "fixing the top influencing cell corrects the repair");
  bench::Verdict(
      session.clean().at(data::SoccerTargetCell()) == Value("Spain"),
      "and the original t5[Country] repair still lands on Spain");
}

}  // namespace

int main() {
  bench::Header("§4 demo scenario: explanation-guided debugging");
  ScenarioA();
  ScenarioB();
  return 0;
}
