// Experiment: Example 2.4 / Example 1.1 — ranking the table cells by
// their Shapley contribution to the repair of t5[Country].
//
// Paper claims (under the §2.2 null-replacement definition):
//   (a) t5[League] has the highest Shapley value among all cells;
//   (b) t5[League] is more influential than t6[City];
//   (c) t1[Place] has no influence (Shapley 0).
//
// We regenerate the ranking under both absent-cell policies: kNull (the
// definition the claims are stated in) and kSampleFromColumn (the
// Example 2.5 estimator). The two differ by design — the estimator's
// baseline draws La Liga back with probability 5/6, flattening
// t5[League]'s measured influence — which the output makes visible.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/explainer.h"
#include "serving/report.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"

namespace {

using namespace trex;  // NOLINT

Explanation Rank(AbsentCellPolicy policy, bool prune) {
  CellExplainerOptions options;
  options.policy = policy;
  options.method = CellMethod::kSampling;
  options.num_samples = 1500;
  options.seed = 20200708;  // the paper's arXiv date, for fun
  options.prune = prune;
  CellExplainer explainer(options);
  auto alg = repair::MakeAlgorithm1();
  auto ex = explainer.Explain(*alg, data::SoccerConstraints(),
                              data::SoccerDirtyTable(),
                              data::SoccerTargetCell());
  if (!ex.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 ex.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(ex).value();
}

}  // namespace

int main() {
  bench::Header(
      "Example 2.4: cell Shapley ranking for the repair of t5[Country]");

  std::printf("\n--- policy: null replacement (the paper's definition); "
              "all 36 cells as players ---\n");
  double seconds = 0;
  Explanation null_ex;
  seconds = bench::TimeSeconds([&] {
    null_ex = Rank(AbsentCellPolicy::kNull, /*prune=*/false);
  });
  ReportOptions report;
  report.top_k = 10;
  std::printf("%s", RenderRanking(null_ex, report).c_str());
  std::printf("%s", RenderCellHeatmap(data::SoccerDirtyTable(), null_ex)
                        .c_str());
  std::printf("wall clock: %.3fs (%zu black-box calls, %zu cache hits)\n",
              seconds, null_ex.algorithm_calls, null_ex.cache_hits);

  std::map<std::string, double> values;
  for (const PlayerScore& p : null_ex.ranked) values[p.label] = p.shapley;

  bench::Verdict(null_ex.ranked[0].label == "t5[League]",
                 "claim (a): t5[League] is the top-ranked cell");
  bench::Verdict(values.at("t5[League]") > values.at("t6[City]"),
                 "claim (b): Shap(t5[League]) > Shap(t6[City])");
  bench::Verdict(values.at("t1[Place]") == 0.0,
                 "claim (c): Shap(t1[Place]) = 0");

  std::printf("\n--- policy: column-distribution replacement "
              "(the Example 2.5 estimator) ---\n");
  Explanation sampled_ex;
  seconds = bench::TimeSeconds([&] {
    sampled_ex = Rank(AbsentCellPolicy::kSampleFromColumn, /*prune=*/true);
  });
  std::printf("%s", RenderRanking(sampled_ex, report).c_str());
  std::printf("wall clock: %.3fs (%zu black-box calls, %zu cache hits)\n",
              seconds, sampled_ex.algorithm_calls, sampled_ex.cache_hits);
  std::map<std::string, double> sampled_values;
  for (const PlayerScore& p : sampled_ex.ranked) {
    sampled_values[p.label] = p.shapley;
  }
  bench::Verdict(
      sampled_values.at("t3[Country]") > 0,
      "estimator shape: the (League,Country) support cells carry the "
      "influence under the column-sample baseline");
  std::printf(
      "note: the two policies rank differently by design — the paper "
      "defines Shapley with nulls (claims above) but estimates with "
      "column draws; see DESIGN.md §6 and bench_ablation.\n");
  return 0;
}
