// Experiment: Figure 2 — the dirty La Liga table (red cells t5[City],
// t5[Country]) and the repaired clean table (blue cells Madrid / Spain).
//
// Regenerates both tables with every bundled repairer and checks which
// reproduce Figure 2b exactly. The paper's demo uses HoloClean; the
// worked examples use Algorithm 1 — both must match.

#include <cstdio>

#include "bench_util.h"
#include "serving/report.h"
#include "serving/session.h"
#include "data/soccer.h"
#include "repair/soccer_algorithm1.h"
#include "repair/fd_repair.h"
#include "repair/holistic.h"
#include "repair/holoclean.h"

namespace {

using namespace trex;  // NOLINT

void RunOne(std::shared_ptr<const repair::RepairAlgorithm> alg) {
  std::printf("\n--- repairer: %s ---\n", alg->name().c_str());
  TRexSession session(alg, data::SoccerConstraints(),
                      data::SoccerDirtyTable());
  double seconds = bench::TimeSeconds([&] {
    if (!session.Repair().ok()) std::exit(1);
  });
  std::printf("%s", RenderRepairScreen(session).c_str());
  std::printf("wall clock: %.4fs\n", seconds);
  const bool matches = session.clean() == data::SoccerCleanTable();
  bench::Verdict(matches, alg->name() +
                              ": clean table matches Figure 2b exactly "
                              "(t5[City]->Madrid, t5[Country]->Spain)");
}

}  // namespace

int main() {
  bench::Header("Figure 2: dirty table -> clean table");
  RunOne(repair::MakeAlgorithm1());
  RunOne(std::make_shared<repair::HoloCleanRepair>());
  RunOne(std::make_shared<repair::HolisticRepair>());
  RunOne(std::make_shared<repair::FdRepair>());
  return 0;
}
